"""Good fixture: every stream names its seed."""

import random

import numpy as np


def seeded_generator(seed: int):
    return np.random.default_rng(seed)


def seeded_kwarg(seed: int):
    return np.random.default_rng(seed=seed)


def seeded_stream(seed: int):
    return random.Random(int(seed))


def derived_bits(seed: int):
    # Constructing bit generators with explicit seeds is sanctioned.
    return np.random.Generator(np.random.PCG64(seed))


def draw(rng: np.random.Generator, n: int):
    # Drawing from a passed-in generator is the whole point.
    return rng.normal(size=n)
