"""Good fixture: the sanctioned write-only instrumentation idioms.

Spans, counters, gauges, events, the guarded ``enabled`` check, and the
phase-timing pattern where ``recorder.now()`` readings flow back into
the recorder and nowhere else.
"""

from repro.telemetry import get_recorder


def run_phase(simulate, payload: dict) -> dict:
    telemetry = get_recorder()
    with telemetry.span("phase.run", cat="fixture", items=len(payload)):
        result = simulate(payload)
    telemetry.count("phase.completed")
    telemetry.observe("phase.items", len(payload))
    return result


def epoch_loop(step, epochs: int) -> list:
    telemetry = get_recorder()
    results = []
    spent = 0.0
    for index in range(epochs):
        if telemetry.enabled:
            tick = telemetry.now()
        results.append(step(index))
        if telemetry.enabled:
            spent += telemetry.now() - tick
    if telemetry.enabled:
        telemetry.observe("epoch.loop_s", spent)
        telemetry.gauge("epoch.count", epochs)
        telemetry.event("loop.finished", cat="fixture", epochs=epochs)
    return results
