"""Bad fixture: unseeded and global-state randomness.

Expected findings: seeded-rng x5 (unseeded default_rng, unseeded
random.Random, random.random draw, random.shuffle draw, legacy
np.random.rand).
"""

import random

import numpy as np


def unseeded_generator():
    return np.random.default_rng()


def unseeded_stream():
    return random.Random()


def global_draw() -> float:
    return random.random()


def global_shuffle(items: list) -> list:
    random.shuffle(items)
    return items


def legacy_numpy():
    return np.random.rand(4)
