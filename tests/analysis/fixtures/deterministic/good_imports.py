"""Good fixture: the replacement surface, not the deprecated front."""

from repro.search import ladder, variants  # noqa: F401
from repro.search.profiler import WorkProfiler  # noqa: F401
