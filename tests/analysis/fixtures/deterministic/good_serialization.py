"""Good fixture: registrations resolvable from a module import.

Module-level lambdas are allowed — re-importing the module re-registers
the identical callable, so remote workers resolve it by name.
"""


def register_policy(name, builder, overwrite=False):  # fixture stand-in
    return builder


def build_fixture_policy(sc, kw):
    return (sc, kw)


register_policy("fixture", build_fixture_policy)
register_policy("fixture-lambda", lambda sc, kw: build_fixture_policy(sc, kw))


def register_by_name():
    # Passing a module-level callable from inside a function is fine:
    # the name resolves after an import on any host.
    register_policy("fixture-again", build_fixture_policy, overwrite=True)
