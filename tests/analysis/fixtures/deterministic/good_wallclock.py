"""Good fixture: time flows from the scenario, never the process clock.

A locally-defined ``time`` attribute or an injected clock callable must
not be mistaken for the stdlib module.
"""

from typing import Callable


class Epoch:
    def __init__(self, horizon: float, interval: float) -> None:
        self.time = 0.0
        self.horizon = horizon
        self.interval = interval

    def advance(self) -> float:
        self.time += self.interval
        return self.time


def run_epochs(horizon: float, clock: Callable[[], float]) -> float:
    # An *injected* clock is the sanctioned seam: tests pass a fake.
    return clock() + horizon
