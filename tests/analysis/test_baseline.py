"""Baseline add / waive / expire round-trips and fingerprint stability."""

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Zone, analyze_source

BAD = "import time\n\ndef f():\n    return time.time()\n"


def findings_for(source: str):
    return analyze_source(source, "src/repro/sim/m.py", zone=Zone.DETERMINISTIC)


class TestFingerprints:
    def test_stable_across_unrelated_edits(self):
        before = findings_for(BAD)
        shifted = findings_for('"""Docstring pushes lines down."""\n\n' + BAD)
        assert before[0].line != shifted[0].line
        assert before[0].fingerprint == shifted[0].fingerprint

    def test_duplicate_lines_fingerprint_independently(self):
        twice = BAD + "\n\ndef g():\n    return time.time()\n"
        findings = findings_for(twice)
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint


class TestRoundTrip:
    def test_add_waive_expire(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = findings_for(BAD)
        assert len(findings) == 1

        # Add: grandfather today's findings.
        Baseline().updated(findings, "pre-lint code").save(path)
        baseline = Baseline.load(path)
        assert len(baseline) == 1
        assert baseline.entries[0].justification == "pre-lint code"

        # Waive: the same finding no longer reports as new.
        new, waived, expired = baseline.partition(findings_for(BAD))
        assert new == [] and len(waived) == 1 and expired == []

        # Expire: fixing the code strands the entry.
        new, waived, expired = baseline.partition(findings_for("x = 1\n"))
        assert new == [] and waived == [] and len(expired) == 1

        # Update drops the stranded entry.
        baseline.updated([], "-").save(path)
        assert len(Baseline.load(path)) == 0

    def test_update_keeps_original_justifications(self, tmp_path):
        findings = findings_for(BAD)
        baseline = Baseline().updated(findings, "original reason")
        again = baseline.updated(findings_for(BAD), "new reason")
        assert again.entries[0].justification == "original reason"

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0


class TestValidation:
    def test_justification_is_mandatory_on_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = {
            "version": 1,
            "entries": [
                {
                    "fingerprint": "abc",
                    "rule": "no-wallclock",
                    "path": "m.py",
                    "code": "x",
                    "justification": "   ",
                }
            ],
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)

    def test_justification_is_mandatory_on_create(self):
        finding = findings_for(BAD)[0]
        with pytest.raises(ValueError, match="justification"):
            BaselineEntry.from_finding(finding, "  ")

    def test_unknown_version_refused(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_corrupt_json_refused(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            Baseline.load(path)
