"""Platform / QoS configuration (paper Table 1 + Section 5)."""

import pytest

from repro import units
from repro.config import DEFAULT_CONFIG, PlatformSpec, QosTargets, RuntimeDefaults


class TestPlatformSpec:
    def test_table1_core_counts(self):
        spec = PlatformSpec()
        assert spec.sockets == 2
        assert spec.cores_per_socket == 22
        assert spec.total_physical_cores == 44
        assert spec.threads_per_core == 2

    def test_irq_reservation(self):
        spec = PlatformSpec()
        assert spec.irq_cores == 6
        assert spec.usable_cores_per_socket == 16

    def test_llc_size(self):
        spec = PlatformSpec()
        assert spec.llc_bytes == units.mb(55)
        assert spec.llc_ways == 20

    def test_memory(self):
        spec = PlatformSpec()
        assert spec.memory_bytes == units.gb(128)
        assert spec.memory_channels == 8

    def test_frequencies(self):
        spec = PlatformSpec()
        assert spec.base_frequency_ghz == pytest.approx(2.2)
        assert spec.max_turbo_frequency_ghz == pytest.approx(3.6)


class TestQosTargets:
    def test_paper_targets(self):
        qos = QosTargets()
        assert qos.nginx == pytest.approx(units.msec(10))
        assert qos.memcached == pytest.approx(units.usec(200))
        assert qos.mongodb == pytest.approx(units.msec(100))

    def test_relative_strictness(self):
        qos = QosTargets()
        assert qos.memcached < qos.nginx < qos.mongodb


class TestRuntimeDefaults:
    def test_section4_defaults(self):
        defaults = RuntimeDefaults()
        assert defaults.decision_interval == pytest.approx(1.0)
        assert defaults.slack_threshold == pytest.approx(0.10)
        assert defaults.max_inaccuracy_pct == pytest.approx(5.0)

    def test_load_is_75_to_80_pct(self):
        assert 0.75 <= RuntimeDefaults().load_fraction <= 0.80


def test_default_config_bundle():
    assert DEFAULT_CONFIG.platform.total_physical_cores == 44
    assert DEFAULT_CONFIG.qos.memcached == pytest.approx(units.usec(200))
    assert DEFAULT_CONFIG.seed == 0x517A
