"""The three paper services: QoS targets, saturation points, sensitivity
ordering (Section 5 + calibration targets)."""

import pytest

from repro import units
from repro.services import SERVICE_FACTORIES, make_service
from repro.services.memcached import Memcached
from repro.services.mongodb import MongoDB
from repro.services.nginx import Nginx


class TestFactory:
    def test_all_three_present(self):
        assert set(SERVICE_FACTORIES) == {"nginx", "memcached", "mongodb"}

    @pytest.mark.parametrize("name", ["nginx", "memcached", "mongodb"])
    def test_make_service(self, name):
        assert make_service(name).name == name

    def test_case_insensitive(self):
        assert make_service("NGINX").name == "nginx"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_service("redis")


class TestQosTargets:
    def test_paper_values(self):
        assert Nginx().qos == pytest.approx(units.msec(10))
        assert Memcached().qos == pytest.approx(units.usec(200))
        assert MongoDB().qos == pytest.approx(units.msec(100))


class TestSaturation:
    def test_fig8_derived_saturation(self):
        # Precise-only mode meets QoS until 340K/48% (NGINX), 280K/46%
        # (memcached), 310/77% (MongoDB) => these saturation levels.
        assert Nginx().saturation_qps(8) == pytest.approx(710_000, rel=0.02)
        assert Memcached().saturation_qps(8) == pytest.approx(610_000, rel=0.02)
        assert MongoDB().saturation_qps(8) == pytest.approx(400, rel=0.02)

    def test_mongodb_scales_worst_with_cores(self):
        # I/O-bound: extra cores barely help.
        gains = {
            name: make_service(name).saturation_qps(16)
            / make_service(name).saturation_qps(8)
            for name in ("nginx", "memcached", "mongodb")
        }
        assert gains["mongodb"] < gains["memcached"] <= gains["nginx"]


class TestSensitivityOrdering:
    def test_memcached_least_forgiving_presence(self):
        # memcached almost always needs a core: its floor saturates at the
        # smallest pressures.
        assert Memcached().sensitivity.presence_ref < Nginx().sensitivity.presence_ref

    def test_mongodb_overload_dominated(self):
        mongo = MongoDB().sensitivity
        assert mongo.membw_overload > mongo.llc
        assert mongo.membw_overload > mongo.membw_linear

    def test_memcached_llc_dominated(self):
        mc = Memcached().sensitivity
        assert mc.llc > mc.membw_linear

    def test_all_have_colocation_floor(self):
        for name in ("nginx", "memcached", "mongodb"):
            assert make_service(name).sensitivity.colocation_floor > 0.1


class TestProfiles:
    @pytest.mark.parametrize("name", ["nginx", "memcached", "mongodb"])
    def test_demand_scales_with_load(self, name):
        svc = make_service(name)
        low = svc.profile(0.3 * svc.saturation_qps(8), 8)
        high = svc.profile(0.9 * svc.saturation_qps(8), 8)
        assert high.membw_per_core > low.membw_per_core

    def test_mongodb_uses_disk(self):
        svc = MongoDB()
        assert svc.profile(300, 8).disk_bw > 0

    def test_nginx_uses_network(self):
        svc = Nginx()
        assert svc.profile(500_000, 8).network_bw > 0

    def test_memcached_no_disk(self):
        assert Memcached().profile(400_000, 8).disk_bw == 0.0


class TestIsolationBehavior:
    @pytest.mark.parametrize("name", ["nginx", "memcached", "mongodb"])
    def test_meets_qos_in_isolation_at_nominal_load(self, name):
        svc = make_service(name)
        qps = 0.775 * svc.saturation_qps(8)
        assert svc.p99_at(qps, 8) < svc.qos

    @pytest.mark.parametrize("name", ["nginx", "memcached", "mongodb"])
    def test_violates_at_saturation(self, name):
        svc = make_service(name)
        assert svc.p99_at(0.999 * svc.saturation_qps(8), 8) > svc.qos
