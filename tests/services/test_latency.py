"""Calibrated latency curve."""

import numpy as np
import pytest

from repro.rng import generator
from repro.services.latency import LatencyCurve, LatencyCurveParams


@pytest.fixture()
def curve():
    return LatencyCurve(LatencyCurveParams(base_p99=1.0, qos=10.0))


class TestShape:
    def test_base_at_zero_load(self, curve):
        assert curve.p99(0.0) == pytest.approx(1.0)

    def test_qos_at_knee(self, curve):
        knee = curve.params.knee_utilization
        assert curve.p99(knee) == pytest.approx(10.0)

    def test_monotone(self, curve):
        grid = np.linspace(0, 0.99, 50)
        values = [curve.p99(u) for u in grid]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_caps_at_max_utilization(self, curve):
        assert curve.p99(1.5) == curve.p99(curve.params.max_utilization)

    def test_negative_rejected(self, curve):
        with pytest.raises(ValueError):
            curve.p99(-0.1)

    def test_mean_below_p99(self, curve):
        assert curve.mean(0.5) < curve.p99(0.5)


class TestInverse:
    def test_roundtrip(self, curve):
        for u in (0.2, 0.5, 0.875, 0.95):
            assert curve.utilization_for_p99(curve.p99(u)) == pytest.approx(u)

    def test_below_base(self, curve):
        assert curve.utilization_for_p99(0.5) == 0.0


class TestSampling:
    def test_unbiased(self, curve):
        rng = generator(1)
        samples = [curve.sample_p99(0.7, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(curve.p99(0.7), rel=0.02)

    def test_fewer_requests_noisier(self, curve):
        rng_a, rng_b = generator(2), generator(2)
        few = np.std([curve.sample_p99(0.7, rng_a, requests_observed=20) for _ in range(2000)])
        many = np.std([curve.sample_p99(0.7, rng_b, requests_observed=1e6) for _ in range(2000)])
        assert few > many

    def test_backlog_penalty_adds(self, curve):
        rng = generator(3)
        base = np.mean([curve.sample_p99(0.5, rng) for _ in range(500)])
        rng = generator(3)
        loaded = np.mean(
            [curve.sample_p99(0.5, rng, backlog_penalty=5.0) for _ in range(500)]
        )
        assert loaded > base + 4.0


class TestValidation:
    def test_qos_must_exceed_base(self):
        with pytest.raises(ValueError):
            LatencyCurveParams(base_p99=10.0, qos=5.0)

    def test_knee_bounds(self):
        with pytest.raises(ValueError):
            LatencyCurveParams(base_p99=1.0, qos=10.0, knee_utilization=1.2)
        with pytest.raises(ValueError):
            LatencyCurveParams(
                base_p99=1.0, qos=10.0, knee_utilization=0.99, max_utilization=0.98
            )
