"""Open-loop load generators."""

import pytest

from repro.services.loadgen import BurstyLoad, ConstantLoad, DiurnalLoad, StepLoad


class TestConstant:
    def test_flat(self):
        gen = ConstantLoad(500.0)
        assert gen.qps_at(0) == gen.qps_at(100) == 500.0

    def test_mean(self):
        assert ConstantLoad(100.0).mean_qps(10.0) == pytest.approx(100.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLoad(-1.0)


class TestStep:
    def test_steps_apply_in_order(self):
        gen = StepLoad(steps=((0.0, 100.0), (10.0, 300.0), (20.0, 50.0)))
        assert gen.qps_at(5) == 100.0
        assert gen.qps_at(10) == 300.0
        assert gen.qps_at(15) == 300.0
        assert gen.qps_at(25) == 50.0

    def test_before_first_step_zero(self):
        gen = StepLoad(steps=((5.0, 100.0),))
        assert gen.qps_at(0.0) == 0.0

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            StepLoad(steps=((10.0, 1.0), (5.0, 2.0)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StepLoad(steps=())


class TestDiurnal:
    def test_bounds(self):
        gen = DiurnalLoad(low_qps=100, high_qps=300, period=60)
        values = [gen.qps_at(t) for t in range(0, 120)]
        assert min(values) >= 100 - 1e-9
        assert max(values) <= 300 + 1e-9

    def test_periodicity(self):
        gen = DiurnalLoad(low_qps=0, high_qps=100, period=30)
        assert gen.qps_at(7.0) == pytest.approx(gen.qps_at(37.0))

    def test_mean_is_midpoint(self):
        gen = DiurnalLoad(low_qps=100, high_qps=300, period=10)
        assert gen.mean_qps(10.0, resolution=0.01) == pytest.approx(200.0, rel=0.02)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            DiurnalLoad(low_qps=300, high_qps=100, period=10)


class TestBursty:
    def test_burst_window(self):
        gen = BurstyLoad(base_qps=100, burst_qps=500, burst_period=10, burst_duration=2)
        assert gen.qps_at(1.0) == 500
        assert gen.qps_at(5.0) == 100
        assert gen.qps_at(11.0) == 500

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            BurstyLoad(base_qps=1, burst_qps=2, burst_period=5, burst_duration=6)
