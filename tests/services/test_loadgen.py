"""Open-loop load generators."""

import numpy as np
import pytest

from repro.services.loadgen import (
    BurstyLoad,
    ConstantLoad,
    DiurnalLoad,
    LoadGenerator,
    StepLoad,
)


class TestConstant:
    def test_flat(self):
        gen = ConstantLoad(500.0)
        assert gen.qps_at(0) == gen.qps_at(100) == 500.0

    def test_mean(self):
        assert ConstantLoad(100.0).mean_qps(10.0) == pytest.approx(100.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLoad(-1.0)


class TestStep:
    def test_steps_apply_in_order(self):
        gen = StepLoad(steps=((0.0, 100.0), (10.0, 300.0), (20.0, 50.0)))
        assert gen.qps_at(5) == 100.0
        assert gen.qps_at(10) == 300.0
        assert gen.qps_at(15) == 300.0
        assert gen.qps_at(25) == 50.0

    def test_before_first_step_zero(self):
        gen = StepLoad(steps=((5.0, 100.0),))
        assert gen.qps_at(0.0) == 0.0

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            StepLoad(steps=((10.0, 1.0), (5.0, 2.0)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StepLoad(steps=())


class TestDiurnal:
    def test_bounds(self):
        gen = DiurnalLoad(low_qps=100, high_qps=300, period=60)
        values = [gen.qps_at(t) for t in range(0, 120)]
        assert min(values) >= 100 - 1e-9
        assert max(values) <= 300 + 1e-9

    def test_periodicity(self):
        gen = DiurnalLoad(low_qps=0, high_qps=100, period=30)
        assert gen.qps_at(7.0) == pytest.approx(gen.qps_at(37.0))

    def test_mean_is_midpoint(self):
        gen = DiurnalLoad(low_qps=100, high_qps=300, period=10)
        assert gen.mean_qps(10.0, resolution=0.01) == pytest.approx(200.0, rel=0.02)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            DiurnalLoad(low_qps=300, high_qps=100, period=10)


class TestBursty:
    def test_burst_window(self):
        gen = BurstyLoad(base_qps=100, burst_qps=500, burst_period=10, burst_duration=2)
        assert gen.qps_at(1.0) == 500
        assert gen.qps_at(5.0) == 100
        assert gen.qps_at(11.0) == 500

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            BurstyLoad(base_qps=1, burst_qps=2, burst_period=5, burst_duration=6)


#: One representative of each generator, for vectorization parity checks.
GENERATORS = [
    ConstantLoad(250.0),
    StepLoad(steps=((0.0, 100.0), (10.0, 300.0), (20.0, 50.0))),
    DiurnalLoad(low_qps=100, high_qps=300, period=60, phase=0.3),
    BurstyLoad(base_qps=100, burst_qps=500, burst_period=10, burst_duration=2),
]


class TestVectorized:
    @pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: type(g).__name__)
    def test_array_matches_scalar(self, gen):
        times = np.linspace(-1.0, 75.0, 400)
        vector = gen.qps_at_array(times)
        scalar = np.array([gen.qps_at(float(t)) for t in times])
        np.testing.assert_allclose(vector, scalar, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: type(g).__name__)
    def test_array_shape_and_dtype(self, gen):
        out = gen.qps_at_array([0.0, 1.0, 2.0])
        assert out.shape == (3,)
        assert out.dtype == np.float64

    @pytest.mark.parametrize("gen", GENERATORS, ids=lambda g: type(g).__name__)
    def test_mean_matches_scalar_loop(self, gen):
        horizon, resolution = 33.0, 0.1
        steps = max(1, int(horizon / resolution))
        expected = sum(
            gen.qps_at(i * horizon / steps) for i in range(steps)
        ) / steps
        assert gen.mean_qps(horizon, resolution) == pytest.approx(
            expected, rel=1e-12
        )

    def test_base_class_fallback_loops(self):
        class Ramp(LoadGenerator):
            def qps_at(self, time: float) -> float:
                return 2.0 * time

        out = Ramp().qps_at_array([0.0, 1.0, 2.5])
        np.testing.assert_allclose(out, [0.0, 2.0, 5.0])
        assert Ramp().mean_qps(10.0) == pytest.approx(10.0 - 0.1)


class TestStepBisect:
    def test_boundary_equality_takes_new_level(self):
        gen = StepLoad(steps=((0.0, 100.0), (10.0, 300.0)))
        assert gen.qps_at(10.0) == 300.0

    def test_duplicate_start_times_last_wins(self):
        gen = StepLoad(steps=((0.0, 100.0), (5.0, 200.0), (5.0, 400.0)))
        assert gen.qps_at(5.0) == 400.0
        assert gen.qps_at(6.0) == 400.0
        assert gen.qps_at(4.0) == 100.0

    def test_large_schedule_lookup(self):
        steps = tuple((float(i), float(i * 10)) for i in range(1000))
        gen = StepLoad(steps=steps)
        assert gen.qps_at(500.5) == 5000.0
        assert gen.qps_at(999.9) == 9990.0
        assert gen.qps_at(-0.1) == 0.0
