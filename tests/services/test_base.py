"""InteractiveService capacity/inflation mechanics and BacklogTracker."""

import pytest

from repro.server.interference import PressureBreakdown
from repro.services.base import BacklogTracker, InterferenceSensitivity
from repro.services.memcached import Memcached
from repro.services.nginx import Nginx


class TestSaturationScaling:
    def test_nominal_exact(self):
        svc = Nginx()
        assert svc.saturation_qps(8) == pytest.approx(710_000)

    def test_more_cores_more_capacity(self):
        svc = Nginx()
        assert svc.saturation_qps(9) > svc.saturation_qps(8)

    def test_amdahl_sublinear(self):
        svc = Memcached()
        double = svc.saturation_qps(16) / svc.saturation_qps(8)
        assert 1.0 < double < 2.0

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            Nginx().saturation_qps(0)


class TestInflation:
    def test_no_pressure_is_identity(self):
        sens = InterferenceSensitivity(llc=0.5, colocation_floor=0.2)
        assert sens.inflation(PressureBreakdown()) == pytest.approx(1.0)

    def test_floor_ramps_with_presence(self):
        sens = InterferenceSensitivity(
            llc=1.0, colocation_floor=0.2, presence_ref=0.1, max_inflation=2.0
        )
        tiny = sens.inflation(PressureBreakdown(llc=0.01))
        saturated = sens.inflation(PressureBreakdown(llc=0.2))
        # Tiny pressure: partial floor; saturated presence: full floor + term.
        assert tiny == pytest.approx(1.0 + 0.2 * 0.1 + 0.01)
        assert saturated == pytest.approx(1.0 + 0.2 + 0.2)

    def test_ceiling(self):
        sens = InterferenceSensitivity(llc=1.0, max_inflation=1.25)
        assert sens.inflation(PressureBreakdown(llc=5.0)) == pytest.approx(1.25)

    def test_monotone_in_pressure(self):
        sens = InterferenceSensitivity(llc=0.4, membw_linear=0.2, colocation_floor=0.1)
        low = sens.inflation(PressureBreakdown(llc=0.1))
        high = sens.inflation(PressureBreakdown(llc=0.3))
        assert high > low


class TestUtilization:
    def test_explicit_inflation_overrides(self):
        svc = Nginx()
        u = svc.utilization(355_000, 8, inflation=2.0)
        assert u == pytest.approx(1.0)

    def test_rejects_negative_qps(self):
        with pytest.raises(ValueError):
            Nginx().utilization(-1, 8)


class TestBacklog:
    def test_grows_under_overload(self):
        tracker = BacklogTracker()
        tracker.update(offered_qps=120, capacity_qps=100, dt=1.0)
        assert tracker.backlog == pytest.approx(20)

    def test_drains_under_slack(self):
        tracker = BacklogTracker()
        tracker.update(120, 100, 1.0)
        tracker.update(80, 100, 0.5)
        assert tracker.backlog == pytest.approx(10)

    def test_never_negative(self):
        tracker = BacklogTracker()
        tracker.update(10, 1000, 5.0)
        assert tracker.backlog == 0.0

    def test_penalty(self):
        tracker = BacklogTracker()
        tracker.update(200, 100, 1.0)
        assert tracker.penalty(100) == pytest.approx(1.0)

    def test_reset(self):
        tracker = BacklogTracker()
        tracker.update(200, 100, 1.0)
        tracker.reset()
        assert tracker.backlog == 0.0
