"""Fat binary + instrumentor: the drwrap_replace analog."""

import pytest

from repro.apps import make_app
from repro.dynrio.binary import FatBinary
from repro.dynrio.instrument import Instrumentor
from repro.dynrio.overhead import OverheadModel
from repro.dynrio.signals import SIGNAL_BASE, SignalBus


@pytest.fixture()
def setup(ladder_cache, raytrace_app):
    ladder = ladder_cache("raytrace")
    binary = FatBinary(raytrace_app, ladder)
    bus = SignalBus()
    instrumentor = Instrumentor(binary, bus)
    return binary, bus, instrumentor


class TestFatBinary:
    def test_level_count(self, setup):
        binary, _, _ = setup
        assert binary.level_count == binary.ladder.max_level + 1

    def test_level_zero_settings_precise(self, setup, raytrace_app):
        binary, _, _ = setup
        settings = binary.settings_for(0)
        knobs = raytrace_app.knobs()
        assert all(settings[k] == knobs[k].precise_value for k in knobs)

    def test_mismatched_ladder_rejected(self, ladder_cache, kmeans_app):
        with pytest.raises(ValueError):
            FatBinary(kmeans_app, ladder_cache("raytrace"))

    def test_describe(self, setup):
        binary, _, _ = setup
        text = binary.describe()
        assert "precise" in text
        assert "approx v1" in text


class TestInstrumentor:
    def test_starts_precise(self, setup):
        _, _, instrumentor = setup
        assert instrumentor.active_level == 0
        assert instrumentor.switches == 0

    def test_signal_switches_level(self, setup):
        _, bus, instrumentor = setup
        bus.send(instrumentor.process, SIGNAL_BASE + 1)
        assert instrumentor.active_level == 1
        assert instrumentor.switches == 1

    def test_request_level_round_trip(self, setup):
        _, _, instrumentor = setup
        instrumentor.request_level(1)
        assert instrumentor.active_level == 1
        instrumentor.request_level(0)
        assert instrumentor.active_level == 0
        assert instrumentor.switches == 2

    def test_same_level_not_a_switch(self, setup):
        _, _, instrumentor = setup
        instrumentor.request_level(0)
        assert instrumentor.switches == 0

    def test_level_log(self, setup):
        _, _, instrumentor = setup
        instrumentor.request_level(1)
        instrumentor.request_level(0)
        assert instrumentor.level_log == [0, 1, 0]

    def test_out_of_range_level(self, setup):
        _, _, instrumentor = setup
        with pytest.raises(IndexError):
            instrumentor.request_level(99)

    def test_run_active_level_executes_kernel(self, setup):
        _, _, instrumentor = setup
        precise_run = instrumentor.run_active_level(seed=0)
        instrumentor.request_level(instrumentor._binary.level_count - 1)
        approx_run = instrumentor.run_active_level(seed=0)
        assert approx_run.counters.work < precise_run.counters.work


class TestOverheadModel:
    def test_instrumentation_factor(self, raytrace_app):
        model = OverheadModel()
        factor = model.instrumentation_factor(raytrace_app.metadata)
        assert factor == pytest.approx(1.0 + raytrace_app.metadata.dynrio_overhead)

    def test_switch_pause_scales(self):
        model = OverheadModel(switch_pause=0.02)
        assert model.switch_pause(3) == pytest.approx(0.06)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            OverheadModel(switch_pause=-1.0)
        with pytest.raises(ValueError):
            OverheadModel().switch_pause(-1)

    def test_paper_overhead_band(self):
        from repro.apps import ALL_APP_NAMES

        model = OverheadModel()
        factors = [
            model.instrumentation_factor(make_app(n).metadata) for n in ALL_APP_NAMES
        ]
        assert max(factors) <= 1.089 + 1e-9
        assert min(factors) > 1.0
