"""Signal bus semantics."""

import pytest

from repro.dynrio.signals import SIGNAL_BASE, SignalBus


class TestRegistration:
    def test_register_and_send(self):
        bus = SignalBus()
        fired = []
        bus.register("proc", SIGNAL_BASE, lambda: fired.append(1))
        bus.send("proc", SIGNAL_BASE)
        assert fired == [1]

    def test_below_realtime_range_rejected(self):
        with pytest.raises(ValueError):
            SignalBus().register("proc", 9, lambda: None)

    def test_unhandled_signal_is_error(self):
        bus = SignalBus()
        with pytest.raises(LookupError):
            bus.send("proc", SIGNAL_BASE)

    def test_per_process_isolation(self):
        bus = SignalBus()
        fired = []
        bus.register("a", SIGNAL_BASE, lambda: fired.append("a"))
        bus.register("b", SIGNAL_BASE, lambda: fired.append("b"))
        bus.send("b", SIGNAL_BASE)
        assert fired == ["b"]


class TestDeliveryLog:
    def test_log_records_order(self):
        bus = SignalBus()
        bus.register("p", SIGNAL_BASE, lambda: None)
        bus.register("p", SIGNAL_BASE + 1, lambda: None)
        bus.send("p", SIGNAL_BASE + 1)
        bus.send("p", SIGNAL_BASE)
        assert bus.delivery_log == [("p", SIGNAL_BASE + 1), ("p", SIGNAL_BASE)]

    def test_signals_for(self):
        bus = SignalBus()
        bus.register("p", SIGNAL_BASE + 2, lambda: None)
        bus.register("p", SIGNAL_BASE, lambda: None)
        assert bus.signals_for("p") == [SIGNAL_BASE, SIGNAL_BASE + 2]
        assert bus.signals_for("ghost") == []
