"""PliantPolicy and baseline policies on the live engine."""

import pytest

from repro.cluster import build_engine
from repro.core import (
    CoreReclaimOnlyPolicy,
    PliantPolicy,
    PrecisePolicy,
    StaticLevelPolicy,
    StaticMostApproxPolicy,
)
from repro.core.runtime import ColocationConfig


def run(service, apps, policy, **cfg):
    config = ColocationConfig(seed=3, **cfg)
    return build_engine(service, list(apps), policy, config=config).run()


class TestPliantPolicy:
    def test_reacts_to_violation(self):
        result = run("memcached", ["kmeans"], PliantPolicy(seed=3))
        levels = result.epoch_app_levels["kmeans"]
        assert levels.max() > 0  # it escalated

    def test_meets_qos_when_precise_does_not(self):
        precise = run("memcached", ["kmeans"], PrecisePolicy())
        pliant = run("memcached", ["kmeans"], PliantPolicy(seed=3))
        assert not precise.qos_met
        assert pliant.qos_met

    def test_jumps_to_most_approximate_first(self):
        result = run("memcached", ["kmeans"], PliantPolicy(seed=3))
        trace = result.app_outcome("kmeans").level_trace
        # First action is a jump straight to the ladder top, not level 1.
        assert trace[0][1] > 1

    def test_bounded_inaccuracy(self):
        result = run("memcached", ["kmeans"], PliantPolicy(seed=3))
        assert result.app_outcome("kmeans").inaccuracy_pct <= 5.5

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PliantPolicy(slack_threshold=-0.1)

    def test_rejects_bad_backoff(self):
        with pytest.raises(ValueError):
            PliantPolicy(min_backoff=0)
        with pytest.raises(ValueError):
            PliantPolicy(min_backoff=10, max_backoff=5)


class TestMultiApp:
    def test_two_apps_managed(self):
        result = run(
            "memcached", ["canneal", "bayesian"], PliantPolicy(seed=3)
        )
        assert result.qos_met
        for name in ("canneal", "bayesian"):
            assert result.app_outcome(name).inaccuracy_pct <= 5.5

    def test_no_disproportionate_penalty(self):
        result = run("nginx", ["canneal", "bayesian"], PliantPolicy(seed=3))
        reclaimed = [a.max_reclaimed for a in result.apps]
        assert max(reclaimed) - min(reclaimed) <= 2


class TestStaticMostApprox:
    def test_pins_max_level(self):
        result = run("mongodb", ["kmeans"], StaticMostApproxPolicy(), horizon=12.0)
        levels = result.epoch_app_levels["kmeans"]
        assert levels[-1] == levels.max()
        assert levels.max() > 0

    def test_never_touches_cores(self):
        result = run("nginx", ["kmeans"], StaticMostApproxPolicy(), horizon=12.0)
        assert result.max_cores_reclaimed() == 0


class TestStaticLevel:
    def test_pins_requested_level(self):
        result = run(
            "mongodb", ["kmeans"], StaticLevelPolicy({"kmeans": 1}), horizon=12.0
        )
        assert result.epoch_app_levels["kmeans"][-1] == 1


class TestCoreReclaimOnly:
    def test_never_approximates(self):
        result = run("memcached", ["kmeans"], CoreReclaimOnlyPolicy())
        assert result.epoch_app_levels["kmeans"].max() == 0
        assert result.app_outcome("kmeans").inaccuracy_pct == 0.0

    def test_reclaims_cores(self):
        result = run("memcached", ["kmeans"], CoreReclaimOnlyPolicy())
        assert result.max_cores_reclaimed() >= 1

    def test_slower_than_pliant_for_the_app(self):
        cores_only = run("memcached", ["kmeans"], CoreReclaimOnlyPolicy())
        pliant = run("memcached", ["kmeans"], PliantPolicy(seed=3))
        a = cores_only.app_outcome("kmeans").finish_time
        b = pliant.app_outcome("kmeans").finish_time
        assert a is not None and b is not None
        assert b < a  # approximation lets the app finish sooner
