"""Colocation engine mechanics."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.cluster import build_engine
from repro.core import PliantPolicy, PrecisePolicy
from repro.core.runtime import ColocationConfig, ColocationEngine


def engine_for(service="memcached", apps=("kmeans",), policy=None, **cfg_kwargs):
    config = ColocationConfig(seed=5, **cfg_kwargs)
    return build_engine(service, list(apps), policy or PrecisePolicy(), config=config)


class TestSetup:
    def test_fair_allocation_single_app(self):
        engine = engine_for()
        assert engine.service_cores == 8
        assert engine.app_sim("kmeans").tenant.cores == 8

    def test_fair_allocation_three_apps(self):
        engine = engine_for(apps=("kmeans", "semphy", "raytrace"))
        assert engine.service_cores == 4
        for name in ("kmeans", "semphy", "raytrace"):
            assert engine.app_sim(name).tenant.cores == 4

    def test_requires_an_app(self):
        from repro.services import make_service

        with pytest.raises(ValueError):
            ColocationEngine(make_service("nginx"), [], PrecisePolicy())

    def test_instrumentation_only_when_required(self):
        precise_engine = engine_for(policy=PrecisePolicy())
        assert precise_engine.app_sim("kmeans").instrumentor is None
        pliant_engine = engine_for(policy=PliantPolicy(seed=5))
        assert pliant_engine.app_sim("kmeans").instrumentor is not None


class TestRun:
    def test_app_completes(self):
        result = engine_for().run()
        outcome = result.app_outcome("kmeans")
        assert outcome.completed
        assert outcome.finish_time > 0

    def test_stops_at_completion(self):
        result = engine_for().run()
        finish = result.app_outcome("kmeans").finish_time
        assert result.epoch_times[-1] == pytest.approx(finish, abs=0.2)

    def test_horizon_caps_run(self):
        result = engine_for(horizon=5.0).run()
        assert result.epoch_times[-1] <= 5.0
        assert not result.app_outcome("kmeans").completed

    def test_timeline_shapes_consistent(self):
        result = engine_for(horizon=10.0).run()
        n = len(result.epoch_times)
        assert len(result.epoch_p99) == n
        assert len(result.epoch_service_cores) == n
        assert len(result.epoch_app_levels["kmeans"]) == n
        assert len(result.epoch_app_cores["kmeans"]) == n

    def test_intervals_at_decision_boundary(self):
        result = engine_for(horizon=10.0, decision_interval=2.0).run()
        times = [rec.observation.time for rec in result.intervals]
        assert times == pytest.approx([2.0, 4.0, 6.0, 8.0, 10.0])

    def test_reproducible(self):
        a = engine_for().run()
        b = engine_for().run()
        assert np.array_equal(a.epoch_p99, b.epoch_p99)
        assert a.app_outcome("kmeans").finish_time == b.app_outcome("kmeans").finish_time

    def test_seed_matters(self):
        a = engine_for().run()
        config = ColocationConfig(seed=6)
        b = build_engine("memcached", ["kmeans"], PrecisePolicy(), config=config).run()
        assert not np.array_equal(a.epoch_p99, b.epoch_p99)


class TestPreciseBaseline:
    def test_never_acts(self):
        result = engine_for().run()
        assert all(rec.action_summary == "hold" for rec in result.intervals)
        assert result.app_outcome("kmeans").inaccuracy_pct == 0.0
        assert result.max_cores_reclaimed() == 0

    def test_violates_qos(self):
        result = engine_for().run()
        assert result.qos_ratio > 1.3


class TestProgressModel:
    def test_fewer_cores_slower(self):
        fast = engine_for().run().app_outcome("kmeans").finish_time

        class TakeCores(PrecisePolicy):
            name = "take-cores"
            done = False

            def on_interval(self, obs, actuator):
                if not self.done:
                    for _ in range(4):
                        actuator.reclaim_core("kmeans")
                    self.done = True

        slow = engine_for(policy=TakeCores()).run().app_outcome("kmeans").finish_time
        assert slow > fast

    def test_instrumented_run_is_slower(self):
        # Same allocation; Pliant's instrumentation overhead must show up if
        # the app stays precise.  Use a do-nothing instrumented policy.
        class InstrumentedHold(PrecisePolicy):
            requires_instrumentation = True
            name = "instrumented-hold"

        precise = engine_for().run().app_outcome("kmeans").finish_time
        instrumented = (
            engine_for(policy=InstrumentedHold()).run().app_outcome("kmeans").finish_time
        )
        assert instrumented > precise


class TestAggregates:
    def test_aggregate_excludes_warmup(self):
        result = engine_for(horizon=20.0).run()
        assert result.warmup_seconds > 0
        assert result.aggregate_p99 > 0

    def test_mean_at_least_median_under_spikes(self):
        result = engine_for(policy=PliantPolicy(seed=5)).run()
        assert result.mean_epoch_p99 >= result.aggregate_p99 * 0.8

    def test_qos_met_fraction_bounds(self):
        result = engine_for(horizon=10.0).run()
        assert 0.0 <= result.qos_met_fraction() <= 1.0

    def test_missing_app_lookup(self):
        result = engine_for(horizon=5.0).run()
        with pytest.raises(LookupError):
            result.app_outcome("ghost")
