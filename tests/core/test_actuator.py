"""Actuator: signal-driven switching, core moves, audit log."""

import pytest

from repro.cluster import build_engine
from repro.core import PliantPolicy
from repro.core.runtime import ColocationConfig


@pytest.fixture()
def engine():
    return build_engine(
        "nginx", ["kmeans"], PliantPolicy(seed=8), config=ColocationConfig(seed=8)
    )


class TestSetLevel:
    def test_switch_updates_everything(self, engine):
        actuator = engine._actuator
        sim = engine.app_sim("kmeans")
        actuator.set_level("kmeans", 1)
        assert sim.level == 1
        assert sim.instrumentor.active_level == 1
        assert sim.pause_remaining > 0
        assert actuator.log.switches_for("kmeans") == 1

    def test_noop_switch_free(self, engine):
        actuator = engine._actuator
        actuator.set_level("kmeans", 0)
        assert actuator.log.switches_for("kmeans") == 0
        assert engine.app_sim("kmeans").pause_remaining == 0

    def test_profile_rescaled(self, engine):
        actuator = engine._actuator
        sim = engine.app_sim("kmeans")
        before = sim.tenant.profile.membw_per_core
        actuator.set_level("kmeans", sim.ladder.max_level)
        after = sim.tenant.profile.membw_per_core
        assert after != before

    def test_out_of_range(self, engine):
        with pytest.raises(IndexError):
            engine._actuator.set_level("kmeans", 42)


class TestCoreMoves:
    def test_reclaim_and_return(self, engine):
        actuator = engine._actuator
        actuator.reclaim_core("kmeans")
        assert actuator.cores_of("kmeans") == 7
        assert actuator.service_cores == 9
        actuator.return_core("kmeans")
        assert actuator.cores_of("kmeans") == 8
        assert actuator.service_cores == 8

    def test_log_records_direction(self, engine):
        actuator = engine._actuator
        actuator.reclaim_core("kmeans")
        actuator.return_core("kmeans")
        deltas = [delta for _, _, delta in actuator.log.core_moves]
        assert deltas == [-1, +1]


class TestObservation:
    def test_views(self, engine):
        actuator = engine._actuator
        assert actuator.running_apps() == ["kmeans"]
        assert actuator.level_of("kmeans") == 0
        assert actuator.max_level("kmeans") >= 1
        assert actuator.nominal_cores("kmeans") == 8
        view = actuator.app_view("kmeans")
        assert view.name == "kmeans"
        assert len(view.level_inaccuracies) == actuator.max_level("kmeans") + 1
