"""Round-robin and impact-aware multi-app arbitration (Section 4.4/6.5)."""

from repro.core.arbiter import AppView, ImpactAwareArbiter, RoundRobinArbiter


def view(name, level=0, max_level=4, cores=4, nominal=4, inaccs=(), rates=()):
    return AppView(
        name=name,
        level=level,
        max_level=max_level,
        cores=cores,
        nominal_cores=nominal,
        level_inaccuracies=inaccs,
        level_traffic_rates=rates,
    )


class TestRoundRobinEscalation:
    def test_approximation_before_cores(self):
        arbiter = RoundRobinArbiter(seed=0)
        apps = [view("a"), view("b")]
        decision = arbiter.escalate(apps)
        assert decision.action == "set_level"
        assert decision.level == 4

    def test_rotates_between_apps(self):
        arbiter = RoundRobinArbiter(seed=0)
        apps = [view("a"), view("b")]
        first = arbiter.escalate(apps)
        second = arbiter.escalate(apps)
        assert {first.app_name, second.app_name} == {"a", "b"}

    def test_cores_once_all_maxed(self):
        arbiter = RoundRobinArbiter(seed=0)
        apps = [view("a", level=4), view("b", level=4)]
        decision = arbiter.escalate(apps)
        assert decision.action == "reclaim_core"

    def test_skips_single_core_apps(self):
        arbiter = RoundRobinArbiter(seed=0)
        apps = [view("a", level=4, cores=1), view("b", level=4, cores=3)]
        for _ in range(4):
            decision = arbiter.escalate(apps)
            assert decision.app_name == "b"

    def test_none_when_exhausted(self):
        arbiter = RoundRobinArbiter(seed=0)
        apps = [view("a", level=4, cores=1)]
        assert arbiter.escalate(apps).action == "none"


class TestRoundRobinDeescalation:
    def test_cores_return_first(self):
        arbiter = RoundRobinArbiter(seed=0)
        apps = [view("a", level=4, cores=2, nominal=4), view("b", level=4)]
        decision = arbiter.deescalate(apps)
        assert decision.action == "return_core"
        assert decision.app_name == "a"

    def test_most_reclaimed_first(self):
        arbiter = RoundRobinArbiter(seed=0)
        apps = [
            view("a", cores=3, nominal=4),
            view("b", cores=1, nominal=4),
        ]
        assert arbiter.deescalate(apps).app_name == "b"

    def test_levels_step_down_after_cores(self):
        arbiter = RoundRobinArbiter(seed=0)
        apps = [view("a", level=3)]
        decision = arbiter.deescalate(apps)
        assert decision.action == "set_level"
        assert decision.level == 2

    def test_none_when_fully_relaxed(self):
        arbiter = RoundRobinArbiter(seed=0)
        assert arbiter.deescalate([view("a")]).action == "none"


class TestFairness:
    def test_no_app_monopolized(self):
        """Across a long escalation sequence no app gives up everything
        while a peer gives nothing (paper: round-robin avoids
        disproportionate penalties)."""
        arbiter = RoundRobinArbiter(seed=1)
        levels = {"a": 0, "b": 0, "c": 0}
        cores = {"a": 4, "b": 4, "c": 4}
        for _ in range(9):
            apps = [
                view(n, level=levels[n], cores=cores[n]) for n in sorted(levels)
            ]
            decision = arbiter.escalate(apps)
            if decision.action == "set_level":
                levels[decision.app_name] = decision.level
            elif decision.action == "reclaim_core":
                cores[decision.app_name] -= 1
        assert max(levels.values()) == min(levels.values())  # all maxed
        assert max(cores.values()) - min(cores.values()) <= 1


class TestImpactAware:
    def test_prefers_best_relief_per_quality(self):
        arbiter = ImpactAwareArbiter()
        cheap_relief = view(
            "cheap", inaccs=(0.0, 1.0), rates=(1.0, 0.2), max_level=1
        )
        costly_relief = view(
            "costly", inaccs=(0.0, 4.0), rates=(1.0, 0.9), max_level=1
        )
        decision = arbiter.escalate([cheap_relief, costly_relief])
        assert decision.app_name == "cheap"

    def test_relaxes_most_sacrificing_app(self):
        arbiter = ImpactAwareArbiter()
        mild = view("mild", level=1, inaccs=(0.0, 1.0), max_level=1)
        harsh = view("harsh", level=1, inaccs=(0.0, 4.5), max_level=1)
        decision = arbiter.deescalate([mild, harsh])
        assert decision.app_name == "harsh"

    def test_cores_when_all_maxed(self):
        arbiter = ImpactAwareArbiter()
        apps = [
            view("a", level=1, max_level=1, cores=4),
            view("b", level=1, max_level=1, cores=2),
        ]
        decision = arbiter.escalate(apps)
        assert decision.action == "reclaim_core"
        assert decision.app_name == "a"  # most cores remaining
