"""Fig. 3 state machine: the full transition table."""

import pytest

from repro.core.controller import ControllerAction, PliantController


def make(level=0, reclaimed=0, max_level=4, max_reclaimable=7):
    return PliantController(
        max_level=max_level,
        max_reclaimable=max_reclaimable,
        level=level,
        reclaimed=reclaimed,
    )


class TestViolationTransitions:
    def test_precise_jumps_to_most_approx(self):
        ctl = make(level=0)
        assert ctl.decide(qos_met=False, slack=-0.5) is ControllerAction.JUMP_TO_MOST_APPROX
        assert ctl.level == 4

    def test_intermediate_level_jumps_to_most_approx(self):
        # "If ... operating at an approximation degree other than the highest
        # and a QoS violation occurs, it immediately reverts to its most
        # approximate variant."
        ctl = make(level=2)
        ctl.decide(qos_met=False, slack=-0.1)
        assert ctl.level == 4

    def test_at_max_level_reclaims_core(self):
        ctl = make(level=4)
        assert ctl.decide(qos_met=False, slack=-0.1) is ControllerAction.RECLAIM_CORE
        assert ctl.reclaimed == 1

    def test_reclaims_one_core_per_interval(self):
        ctl = make(level=4)
        for expected in (1, 2, 3):
            ctl.decide(qos_met=False, slack=-0.1)
            assert ctl.reclaimed == expected

    def test_exhausted_holds(self):
        ctl = make(level=4, reclaimed=7)
        assert ctl.decide(qos_met=False, slack=-0.1) is ControllerAction.HOLD


class TestSlackTransitions:
    def test_returns_core_before_reducing_approximation(self):
        ctl = make(level=4, reclaimed=2)
        assert ctl.decide(qos_met=True, slack=0.2) is ControllerAction.RETURN_CORE
        assert ctl.reclaimed == 1
        assert ctl.level == 4

    def test_steps_toward_precise_after_cores_returned(self):
        ctl = make(level=4, reclaimed=0)
        assert (
            ctl.decide(qos_met=True, slack=0.2)
            is ControllerAction.STEP_TOWARD_PRECISE
        )
        assert ctl.level == 3

    def test_gradual_not_jump(self):
        ctl = make(level=4)
        ctl.decide(qos_met=True, slack=0.2)
        ctl.decide(qos_met=True, slack=0.2)
        assert ctl.level == 2

    def test_fully_relaxed_holds(self):
        ctl = make(level=0, reclaimed=0)
        assert ctl.decide(qos_met=True, slack=0.5) is ControllerAction.HOLD


class TestHoldBand:
    def test_met_without_slack_holds(self):
        ctl = make(level=3, reclaimed=1)
        assert ctl.decide(qos_met=True, slack=0.05) is ControllerAction.HOLD
        assert ctl.level == 3
        assert ctl.reclaimed == 1

    def test_exactly_at_threshold_holds(self):
        ctl = make(level=3, reclaimed=1)
        assert ctl.decide(qos_met=True, slack=0.10) is ControllerAction.HOLD


class TestFullCycle:
    def test_escalate_then_deescalate_mirror(self):
        ctl = make()
        ctl.decide(False, -0.5)  # -> most approx
        ctl.decide(False, -0.5)  # -> reclaim 1
        ctl.decide(False, -0.5)  # -> reclaim 2
        assert (ctl.level, ctl.reclaimed) == (4, 2)
        ctl.decide(True, 0.3)  # return core
        ctl.decide(True, 0.3)  # return core
        ctl.decide(True, 0.3)  # step level
        assert (ctl.level, ctl.reclaimed) == (3, 0)


class TestValidation:
    def test_rejects_negative_max_level(self):
        with pytest.raises(ValueError):
            PliantController(max_level=-1, max_reclaimable=0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PliantController(max_level=1, max_reclaimable=1, slack_threshold=1.5)
