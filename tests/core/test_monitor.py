"""Performance monitor: windows, slack, adaptive sampling."""

import pytest

from repro.core.monitor import IntervalObservation, PerformanceMonitor


class TestObservation:
    def test_qos_met(self):
        obs = IntervalObservation(time=1.0, p99=0.8, qos=1.0, sample_count=10)
        assert obs.qos_met
        assert obs.slack == pytest.approx(0.2)
        assert obs.ratio == pytest.approx(0.8)

    def test_violation(self):
        obs = IntervalObservation(time=1.0, p99=2.0, qos=1.0, sample_count=10)
        assert not obs.qos_met
        assert obs.slack == pytest.approx(-1.0)


class TestMonitor:
    def test_interval_aggregation(self):
        monitor = PerformanceMonitor(qos=1.0)
        for value in (0.5, 1.5, 1.0):
            monitor.record(value)
        obs = monitor.close_interval(time=1.0)
        assert obs.p99 == pytest.approx(1.0)
        assert obs.sample_count == 3

    def test_window_resets(self):
        monitor = PerformanceMonitor(qos=1.0)
        monitor.record(5.0)
        monitor.close_interval(1.0)
        monitor.record(1.0)
        obs = monitor.close_interval(2.0)
        assert obs.p99 == pytest.approx(1.0)

    def test_empty_interval_reuses_last(self):
        monitor = PerformanceMonitor(qos=1.0)
        monitor.record(0.7)
        first = monitor.close_interval(1.0)
        second = monitor.close_interval(2.0)
        assert second.p99 == first.p99
        assert second.sample_count == 0

    def test_history(self):
        monitor = PerformanceMonitor(qos=1.0)
        monitor.record(0.5)
        monitor.close_interval(1.0)
        monitor.record(2.0)
        monitor.close_interval(2.0)
        assert len(monitor.history) == 2
        assert monitor.qos_met_fraction() == pytest.approx(0.5)

    def test_rejects_negative_sample(self):
        with pytest.raises(ValueError):
            PerformanceMonitor(qos=1.0).record(-1.0)

    def test_rejects_bad_qos(self):
        with pytest.raises(ValueError):
            PerformanceMonitor(qos=0.0)


class TestAdaptiveSampling:
    def test_near_boundary_samples_every_epoch(self):
        monitor = PerformanceMonitor(qos=1.0)
        monitor.record(0.95)  # slack 0.05 -> near boundary
        monitor.close_interval(1.0)
        assert all(monitor.should_sample(i) for i in range(10))

    def test_far_from_boundary_backs_off(self):
        monitor = PerformanceMonitor(qos=1.0)
        monitor.record(0.1)  # slack 0.9 -> far
        monitor.close_interval(1.0)
        sampled = [monitor.should_sample(i) for i in range(10)]
        assert not all(sampled)
        assert any(sampled)

    def test_non_adaptive_always_samples(self):
        monitor = PerformanceMonitor(qos=1.0, adaptive=False)
        monitor.record(0.1)
        monitor.close_interval(1.0)
        assert all(monitor.should_sample(i) for i in range(10))
