"""Seeded RNG discipline."""

import numpy as np

from repro import rng


class TestGenerator:
    def test_default_seed_reproducible(self):
        a = rng.generator().random(8)
        b = rng.generator().random(8)
        assert np.array_equal(a, b)

    def test_explicit_seed(self):
        a = rng.generator(7).random(4)
        b = rng.generator(7).random(4)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(rng.generator(1).random(4), rng.generator(2).random(4))


class TestDeriveSeed:
    def test_stable(self):
        assert rng.derive_seed(42, "monitor") == rng.derive_seed(42, "monitor")

    def test_label_sensitivity(self):
        assert rng.derive_seed(42, "a") != rng.derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert rng.derive_seed(1, "a") != rng.derive_seed(2, "a")

    def test_non_negative(self):
        for label in ("x", "y", "a/b/c"):
            assert rng.derive_seed(123456, label) >= 0


class TestChildGenerator:
    def test_independent_streams(self):
        a = rng.child_generator(0, "one").random(16)
        b = rng.child_generator(0, "two").random(16)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = rng.child_generator(5, "app/kmeans").random(16)
        b = rng.child_generator(5, "app/kmeans").random(16)
        assert np.array_equal(a, b)
