"""BrokerTransport contract: filesystem/TCP parity and TCP fault tolerance.

The transport is the one piece of the distributed path that changed
between PR 2 and PR 6 — these tests pin the contract both
implementations must share: the same 32-scenario sweep must come back
``ResultSet.identical()`` over either transport, and a worker SIGKILLed
mid-sweep on the TCP path must cost nothing but its lease TTL (the
broker-side monotonic expiry reassigns its chunk).
"""

from __future__ import annotations

import pytest

from repro.experiment import ExperimentSpec, run_experiment
from repro.sweep import (
    DistributedBackend,
    SerialBackend,
    SweepCache,
    TcpBroker,
    TcpTransport,
    transport_from_spec,
)
from repro.sweep.backends.tcp import parse_tcp_spec
from repro.sweep.grid import Scenario

#: 2 services x 2 mixes x 2 policies x 2 loads x 2 seeds = 32 scenarios,
#: mirroring the `make sweep-smoke` grid at a tier-1-friendly horizon.
SPEC = ExperimentSpec(
    name="transport-parity",
    base={"horizon": 60.0},
    axes={
        "service": ("memcached", "mongodb"),
        "apps": (("kmeans",), ("canneal", "snp")),
        "policy": ("pliant", "precise"),
        "load_fraction": (0.6, 0.85),
        "seed": (4, 5),
    },
)


@pytest.fixture(scope="module")
def serial_reference():
    return run_experiment(SPEC, backend=SerialBackend())


@pytest.fixture(params=["filesystem", "tcp"])
def transport_spec(request, tmp_path):
    """A fresh spool spec per test: a directory, or a live broker."""
    if request.param == "filesystem":
        yield str(tmp_path / "spool")
        return
    broker = TcpBroker(lease_ttl=30.0)
    try:
        yield broker.start()
    finally:
        broker.stop()


class TestTransportParity:
    def test_sweep_identical_across_transports(
        self, transport_spec, tmp_path, serial_reference
    ):
        """The same 32-scenario sweep over either transport, with a real
        worker subprocess, returns a bit-identical ResultSet."""
        assert len(SPEC.scenarios()) == 32
        cache = SweepCache(tmp_path / "cache")
        backend = DistributedBackend(
            transport_spec, cache=cache, timeout=600.0, local_workers=1
        )
        results = run_experiment(SPEC, backend=backend, cache=cache)
        assert results.identical(serial_reference)
        status = backend.transport().status()
        assert status.done == status.total == 32
        assert status.failed == 0

    def test_transport_contract_round_trip(self, transport_spec):
        """submit/claim/heartbeat/done behave identically on both sides."""
        transport = transport_from_spec(transport_spec, lease_ttl=30.0)
        scenarios = [
            Scenario(service="mongodb", apps=("kmeans",), horizon=60.0, seed=s)
            for s in range(5)
        ]
        ids = transport.submit_many(scenarios)
        assert len(set(ids)) == 5
        assert transport.submit_many(scenarios) == ids  # idempotent

        chunk = transport.claim_chunk("w1", max_jobs=3)
        assert len(chunk) == 3
        assert all(job.scenario in scenarios for job in chunk)
        transport.heartbeat_many([job.job_id for job in chunk])
        rest = transport.claim_chunk("w2", max_jobs=10)
        assert len(rest) == 2  # live leases are not double-claimed

        for job in chunk + rest:
            transport.mark_done(
                job.job_id, key="k" * 32, duration=0.01, worker_id="w"
            )
        assert transport.all_done()
        infos = transport.done_info_many(ids)
        assert set(infos) == set(ids)
        assert all(info["key"] == "k" * 32 for info in infos.values())

        status = transport.status()
        assert (status.total, status.done, status.pending) == (5, 5, 0)

        transport.reset_job(ids[0])
        assert not transport.all_done()
        assert transport.status().pending == 1

    def test_failed_job_surfaces_through_transport(self, transport_spec):
        transport = transport_from_spec(transport_spec)
        scenario = Scenario(service="mongodb", apps=("kmeans",), horizon=60.0)
        [job_id] = transport.submit_many([scenario])
        transport.mark_failed(job_id, error="ValueError: boom", worker_id="w9")
        info = transport.done_info_many([job_id])[job_id]
        assert info["error"] == "ValueError: boom"
        assert transport.status().failed == 1
        # Drained, not re-queued: no worker can claim a poison job again.
        assert transport.claim_chunk("w10", max_jobs=5) == []


class TestTcpWorkerKill:
    def test_dead_worker_chunk_is_reassigned(self, tmp_path):
        """Mid-sweep worker death on the TCP path: a worker claims a chunk
        and goes silent (exactly what SIGKILL looks like from the broker —
        the real-subprocess version runs in `make sweep-smoke-tcp`).  Its
        leases expire on the broker's monotonic clock, the survivor steals
        them, and the sweep still ends bit-identical to serial."""
        broker = TcpBroker(lease_ttl=1.0)
        spec = broker.start()
        try:
            scenarios = SPEC.scenarios()[:12]
            cache = SweepCache(tmp_path / "cache")
            transport = TcpTransport(spec, lease_ttl=1.0)
            transport.submit_many(scenarios)
            victim_chunk = transport.claim_chunk("victim", max_jobs=5)
            assert len(victim_chunk) == 5  # claimed, then killed: no beats

            backend = DistributedBackend(
                spec, cache=cache, lease_ttl=1.0, timeout=600.0,
                local_workers=1,
            )
            engine_results = run_experiment(
                scenarios, backend=backend, cache=cache
            )
            reference = run_experiment(scenarios, backend=SerialBackend())
            assert engine_results.identical(reference)
            status = transport.status()
            assert status.done == status.total == len(scenarios)
            assert status.failed == 0
        finally:
            broker.stop()


class TestTcpPieces:
    def test_parse_tcp_spec(self):
        assert parse_tcp_spec("tcp://127.0.0.1:7077") == ("127.0.0.1", 7077)
        for bad in ("tcp://nohost", "tcp://:9", "tcp://h:", "file:///x"):
            with pytest.raises(ValueError):
                parse_tcp_spec(bad)

    def test_broker_monotonic_expiry_ignores_wall_clock(self):
        """Lease liveness is judged purely on the broker's injected clock:
        heartbeat deltas, never worker wall-clock timestamps."""
        now = [100.0]
        broker = TcpBroker(lease_ttl=2.0, clock=lambda: now[0])
        scenario = Scenario(service="mongodb", apps=("kmeans",), horizon=60.0)
        [job_id] = broker.handle(
            {"op": "submit", "scenarios": [scenario.to_payload()]}
        )["job_ids"]
        claimed = broker.handle(
            {"op": "claim", "worker": "w1", "max_jobs": 1}
        )["jobs"]
        assert [job["job_id"] for job in claimed] == [job_id]

        # Heartbeats keep it alive however long the wall clock claims.
        for _ in range(5):
            now[0] += 1.5
            broker.handle({"op": "heartbeat", "job_ids": [job_id]})
            assert broker.handle({"op": "claim", "worker": "w2"})["jobs"] == []

        # Silence past the TTL expires it; the next claim steals it.
        now[0] += 2.5
        assert broker.handle({"op": "status"})["status"]["expired"] == 1
        stolen = broker.handle({"op": "claim", "worker": "w2"})["jobs"]
        assert [job["job_id"] for job in stolen] == [job_id]

    def test_broker_rejects_unknown_op_and_bad_payload(self):
        broker = TcpBroker()
        assert broker.handle({"op": "warp"})["ok"] is False
        with pytest.raises(Exception):
            broker.handle({"op": "submit", "scenarios": [{"service": 3}]})

    def test_transport_survives_broker_restart(self, tmp_path):
        """A dropped connection re-dials once per request: a broker restart
        mid-sweep costs a retry, not the sweep."""
        broker = TcpBroker(lease_ttl=30.0)
        spec = broker.start()
        transport = TcpTransport(spec)
        scenario = Scenario(service="mongodb", apps=("kmeans",), horizon=60.0)
        transport.submit_many([scenario])
        host, port = parse_tcp_spec(spec)
        broker.stop()
        # Same port, fresh broker (queue state is in-memory and lost —
        # resubmission is the submitter's poll loop's job).
        revived = TcpBroker(port=port, lease_ttl=30.0)
        revived.start()
        try:
            ids = transport.submit_many([scenario])
            assert len(ids) == 1
        finally:
            revived.stop()
