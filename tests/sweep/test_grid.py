"""Scenario and SweepGrid: declarative grid expansion."""

import pytest

from repro.core.runtime import ColocationConfig
from repro.sweep import Scenario, SweepGrid


class TestScenario:
    def test_single_app_string_normalized(self):
        scenario = Scenario(service="nginx", apps="kmeans")
        assert scenario.apps == ("kmeans",)

    def test_list_mix_normalized_to_tuple(self):
        scenario = Scenario(service="nginx", apps=["kmeans", "canneal"])
        assert scenario.apps == ("kmeans", "canneal")

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            Scenario(service="nginx", apps=())

    def test_config_round_trip(self):
        scenario = Scenario(
            service="nginx",
            apps=("kmeans",),
            load_fraction=0.6,
            decision_interval=2.0,
            monitor_epoch=0.2,
            slack_threshold=0.15,
            horizon=120.0,
            seed=9,
            stop_when_apps_done=False,
        )
        config = scenario.config()
        assert config == ColocationConfig(
            load_fraction=0.6,
            decision_interval=2.0,
            monitor_epoch=0.2,
            slack_threshold=0.15,
            horizon=120.0,
            seed=9,
            stop_when_apps_done=False,
        )

    def test_hashable_and_equal_by_value(self):
        a = Scenario(service="nginx", apps=("kmeans",), seed=3)
        b = Scenario(service="nginx", apps=("kmeans",), seed=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_key_payload_covers_every_axis(self):
        base = Scenario(service="nginx", apps=("kmeans",))
        payload = base.key_payload()
        for field in (
            "service",
            "apps",
            "policy",
            "load_fraction",
            "decision_interval",
            "monitor_epoch",
            "slack_threshold",
            "horizon",
            "seed",
            "stop_when_apps_done",
            "exploration_seed",
        ):
            assert field in payload

    def test_label_mentions_coordinates(self):
        scenario = Scenario(
            service="nginx", apps=("kmeans", "snp"), load_fraction=0.5, seed=3
        )
        label = scenario.label()
        assert "nginx" in label and "kmeans+snp" in label and "0.5" in label


class TestSweepGrid:
    def test_len_is_axis_product(self):
        grid = SweepGrid(
            services=("nginx", "mongodb"),
            app_mixes=(("kmeans",), ("canneal",), ("snp",)),
            policies=("pliant", "precise"),
            load_fractions=(0.4, 0.6),
            decision_intervals=(1.0,),
            seeds=(0, 1),
        )
        assert len(grid) == 2 * 3 * 2 * 2 * 1 * 2
        assert len(grid.scenarios()) == len(grid)

    def test_expansion_deterministic(self):
        grid = SweepGrid(
            services=("nginx", "mongodb"),
            app_mixes=(("kmeans",),),
            load_fractions=(0.4, 0.8),
        )
        assert grid.scenarios() == grid.scenarios()

    def test_expansion_order_slowest_axis_first(self):
        grid = SweepGrid(
            services=("nginx", "mongodb"),
            app_mixes=(("kmeans",),),
            load_fractions=(0.4, 0.8),
        )
        coords = [(s.service, s.load_fraction) for s in grid]
        assert coords == [
            ("nginx", 0.4),
            ("nginx", 0.8),
            ("mongodb", 0.4),
            ("mongodb", 0.8),
        ]

    def test_base_scenario_carries_non_axis_knobs(self):
        base = Scenario(
            service="nginx", apps=("kmeans",), horizon=50.0, monitor_epoch=0.2
        )
        grid = SweepGrid(
            services=("mongodb",),
            app_mixes=(("canneal",),),
            seeds=(5,),
            base=base,
        )
        (scenario,) = grid.scenarios()
        assert scenario.service == "mongodb"
        assert scenario.apps == ("canneal",)
        assert scenario.seed == 5
        assert scenario.horizon == 50.0
        assert scenario.monitor_epoch == 0.2

    def test_string_service_and_mixes_normalized(self):
        grid = SweepGrid(services="nginx", app_mixes=("kmeans", ("snp",)))
        assert grid.services == ("nginx",)
        assert grid.app_mixes == (("kmeans",), ("snp",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(services=(), app_mixes=(("kmeans",),))
        with pytest.raises(ValueError):
            SweepGrid(services=("nginx",), app_mixes=(("kmeans",),), seeds=())
