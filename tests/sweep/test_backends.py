"""Execution backends: protocol, spool/lease fault tolerance, parity."""

import threading
import time

import pytest

from repro.sweep import (
    DistributedBackend,
    JobSpool,
    ProcessBackend,
    Scenario,
    SerialBackend,
    SweepCache,
    SweepEngine,
    SweepGrid,
    backend_from_env,
    results_identical,
    run_scenario,
    run_worker,
)

#: Short-horizon scenario template: fast but long enough for decisions.
BASE = Scenario(service="mongodb", apps=("kmeans",), horizon=60.0, seed=4)


def _grid(loads=(0.5, 0.8), seeds=(4, 5)) -> SweepGrid:
    return SweepGrid(
        services=("mongodb",),
        app_mixes=(("kmeans",),),
        load_fractions=loads,
        seeds=seeds,
        base=BASE,
    )


class TestScenarioPayloadRoundTrip:
    def test_identity(self):
        scenario = Scenario(
            service="nginx",
            apps=("kmeans", "canneal"),
            policy="core-reclaim-only",
            policy_kwargs=(("slack_threshold", 0.2),),
            load_fraction=0.6,
            seed=9,
        )
        assert Scenario.from_payload(scenario.to_payload()) == scenario

    def test_payload_is_json_safe(self):
        import json

        payload = BASE.to_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_round_trip_preserves_cache_key(self, tmp_path):
        cache = SweepCache(tmp_path)
        clone = Scenario.from_payload(BASE.to_payload())
        assert cache.key(clone) == cache.key(BASE)


class TestLocalBackends:
    def test_serial_matches_process(self):
        grid = _grid()
        serial = SerialBackend().execute(grid.scenarios())
        parallel = ProcessBackend(2).execute(grid.scenarios())
        assert len(serial) == len(parallel) == len(grid)
        for (a, _), (b, _) in zip(serial, parallel):
            assert results_identical(a, b)

    def test_durations_recorded(self):
        [(result, duration)] = SerialBackend().execute([BASE])
        assert duration > 0.0
        assert result.policy_name == "pliant"

    def test_process_backend_inline_for_single_scenario(self):
        # No pool spin-up for a 1-scenario batch; result still correct.
        [(result, _)] = ProcessBackend(8).execute([BASE])
        assert results_identical(result, run_scenario(BASE))

    def test_engine_resolves_serial_then_process(self):
        assert isinstance(SweepEngine(workers=1).resolve_backend(4), SerialBackend)
        assert isinstance(SweepEngine(workers=4).resolve_backend(4), ProcessBackend)
        assert isinstance(SweepEngine(workers=4).resolve_backend(1), SerialBackend)

    def test_engine_explicit_backend_wins(self):
        backend = SerialBackend()
        engine = SweepEngine(workers=8, backend=backend)
        assert engine.resolve_backend(100) is backend
        assert engine.backend is backend


class TestJobSpool:
    def test_submit_is_idempotent_and_content_addressed(self, tmp_path):
        spool = JobSpool(tmp_path)
        first = spool.submit(BASE)
        second = spool.submit(BASE)
        assert first == second
        assert spool.job_ids() == [first]
        assert spool.load_scenario(first) == BASE

    def test_claim_race_claims_exactly_once(self, tmp_path):
        spool = JobSpool(tmp_path)
        job_id = spool.submit(BASE)
        wins = []
        barrier = threading.Barrier(8)

        def contend(worker):
            barrier.wait()
            if spool.try_claim(job_id, f"worker-{worker}"):
                wins.append(worker)

        threads = [threading.Thread(target=contend, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_live_lease_blocks_second_claim(self, tmp_path):
        spool = JobSpool(tmp_path, lease_ttl=30.0)
        job_id = spool.submit(BASE)
        assert spool.try_claim(job_id, "alice")
        assert not spool.try_claim(job_id, "bob")

    def test_expired_lease_is_stolen(self, tmp_path):
        spool = JobSpool(tmp_path, lease_ttl=0.2)
        job_id = spool.submit(BASE)
        assert spool.try_claim(job_id, "dead-worker")
        # Expiry is monotonic dwell at a frozen mtime, observed by the
        # would-be stealer itself: the first contact only starts the
        # clock, and the steal lands once no heartbeat arrives for a TTL.
        assert not spool.try_claim(job_id, "survivor")
        deadline = time.monotonic() + 5.0
        while not spool.try_claim(job_id, "survivor"):
            assert time.monotonic() < deadline, "expired lease never stolen"
            time.sleep(0.05)
        assert "survivor" in spool.lease_path(job_id).read_text()

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        spool = JobSpool(tmp_path, lease_ttl=0.2)
        job_id = spool.submit(BASE)
        assert spool.try_claim(job_id, "owner")
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            spool.heartbeat(job_id)
            assert not spool.try_claim(job_id, "thief")
            time.sleep(0.05)

    def test_released_lease_reclaimable_despite_race(self, tmp_path):
        """Regression: a lease released between the failed O_EXCL open and
        the age stat must not make try_claim report the job as taken."""

        class RacingSpool(JobSpool):
            def lease_age(self, job_id):
                # The owner releases exactly in the window between our
                # failed O_EXCL create and this stat.
                JobSpool.release(self, job_id)
                return None

        spool = RacingSpool(tmp_path, lease_ttl=30.0)
        job_id = spool.submit(BASE)
        assert spool.try_claim(job_id, "owner")
        assert spool.try_claim(job_id, "contender")
        assert "contender" in spool.lease_path(job_id).read_text()

    def test_lease_age_immune_to_clock_skew(self, tmp_path):
        """Heartbeats stamped by a host whose clock is off by ±5s must not
        spuriously expire (or immortalize) a lease: age is local monotonic
        dwell since the last observed mtime *change*, never wall-clock
        minus a foreign timestamp."""
        import os

        spool = JobSpool(tmp_path, lease_ttl=0.3)
        job_id = spool.submit(BASE)
        assert spool.try_claim(job_id, "remote-worker")
        lease = spool.lease_path(job_id)

        # Live worker, skewed clock: every heartbeat lands with a ±5s-off
        # mtime, but each *changes* the mtime, so the observed age resets.
        for step, skew in enumerate((-5.0, 5.0, -5.0, 5.0)):
            stamp = time.time() + skew + step * 1e-3
            os.utime(lease, (stamp, stamp))
            age = spool.lease_age(job_id)
            assert age is not None and age <= spool.lease_ttl
            assert not spool.try_claim(job_id, "thief")
            time.sleep(0.05)

        # Dead worker, skewed clock: the mtime freezes (at a value wall
        # clocks would misjudge in either direction) and monotonic dwell
        # alone must expire it.
        deadline = time.monotonic() + 5.0
        while spool.lease_age(job_id) <= spool.lease_ttl:
            assert time.monotonic() < deadline, "frozen lease never expired"
            time.sleep(0.05)
        assert spool.try_claim(job_id, "survivor")

    def test_claim_chunk_leases_many_in_one_scan(self, tmp_path):
        from dataclasses import replace

        spool = JobSpool(tmp_path)
        ids = [spool.submit(replace(BASE, seed=s)) for s in range(6)]
        chunk = spool.claim_chunk("bulk-worker", max_jobs=4)
        assert len(chunk) == 4
        rest = spool.claim_chunk("other-worker", max_jobs=10)
        assert len(rest) == 2
        assert {j.job_id for j in chunk} | {j.job_id for j in rest} == set(ids)
        assert spool.claim_chunk("late-worker", max_jobs=10) == []

    def test_done_job_not_claimable(self, tmp_path):
        spool = JobSpool(tmp_path)
        job_id = spool.submit(BASE)
        spool.mark_done(job_id, key="k", duration=0.1, worker_id="w")
        assert not spool.try_claim(job_id, "late-worker")
        assert spool.claim_next("late-worker") is None

    def test_status_census(self, tmp_path):
        from dataclasses import replace

        spool = JobSpool(tmp_path, lease_ttl=0.2)
        ids = [spool.submit(replace(BASE, seed=s)) for s in range(4)]
        spool.mark_done(ids[0], key="k", duration=0.1, worker_id="w")
        spool.try_claim(ids[1], "alive")
        spool.try_claim(ids[2], "dead")
        first = spool.status()  # starts the observation clocks
        assert (first.total, first.done, first.running) == (4, 1, 2)
        # "alive" keeps heartbeating; "dead" goes silent past the TTL.
        deadline = time.monotonic() + 0.35
        while time.monotonic() < deadline:
            spool.heartbeat(ids[1])
            time.sleep(0.05)
        status = spool.status()
        assert (status.total, status.done) == (4, 1)
        assert (status.running, status.expired, status.pending) == (1, 1, 1)


class TestWorkerFaultTolerance:
    def test_crash_reassignment_produces_identical_result(self, tmp_path):
        """Dead worker's lease expires; a live worker re-runs the job and
        lands the exact same bits (the determinism contract)."""
        spool = JobSpool(tmp_path / "spool", lease_ttl=0.3)
        cache = SweepCache(tmp_path / "cache")
        job_id = spool.submit(BASE)
        # A worker claims the job, then "crashes": heartbeats stop, so the
        # survivor's poll loop watches the lease sit frozen for a TTL of
        # monotonic time and then steals it.
        assert spool.try_claim(job_id, "crashed-worker")

        executed = run_worker(
            spool, cache=cache, exit_when_idle=True, worker_id="survivor",
            poll_interval=0.05,
        )
        assert executed == 1
        info = spool.done_info(job_id)
        assert info["worker"] == "survivor"
        assert results_identical(cache.get(info["key"]), run_scenario(BASE))

    def test_worker_drains_spool_and_publishes_to_cache(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        cache = SweepCache(tmp_path / "cache")
        scenarios = _grid().scenarios()
        for scenario in scenarios:
            spool.submit(scenario)
        executed = run_worker(spool, cache=cache, exit_when_idle=True)
        assert executed == len(scenarios)
        assert spool.all_done()
        assert cache.entry_count() == len(scenarios)

    def test_max_jobs_bounds_a_worker(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        cache = SweepCache(tmp_path / "cache")
        for scenario in _grid().scenarios():
            spool.submit(scenario)
        assert run_worker(spool, cache=cache, max_jobs=1) == 1
        assert spool.status().done == 1

    def test_poison_job_fails_without_killing_worker(self, tmp_path):
        """A scenario that raises is marked failed; the worker keeps
        serving and the rest of the spool still drains."""
        from dataclasses import replace

        spool = JobSpool(tmp_path / "spool")
        cache = SweepCache(tmp_path / "cache")
        poison = replace(BASE, policy="no-such-policy")
        spool.submit(poison)
        spool.submit(BASE)
        executed = run_worker(
            spool, cache=cache, exit_when_idle=True, worker_id="hardy"
        )
        assert executed == 2
        status = spool.status()
        assert (status.done, status.failed) == (2, 1)
        info = spool.done_info(spool.job_id(poison))
        assert "no-such-policy" in info["error"]
        good = spool.done_info(spool.job_id(BASE))
        assert results_identical(cache.get(good["key"]), run_scenario(BASE))

    def test_submitter_surfaces_failed_job(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        job_id = spool.submit(BASE)
        spool.mark_failed(job_id, error="ValueError: boom", worker_id="w9")
        backend = DistributedBackend(
            tmp_path / "spool", cache=SweepCache(tmp_path / "cache"),
            timeout=10.0,
        )
        with pytest.raises(RuntimeError, match="boom"):
            backend.execute([BASE])

    def test_malformed_job_file_is_quarantined(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        job_id = spool.submit(BASE)
        spool.job_path(job_id).write_text("{not json")
        assert spool.claim_next("worker") is None
        assert spool.job_ids() == []          # out of the queue for good
        assert spool.all_done()               # --exit-when-idle workers exit
        assert spool.job_path(job_id).with_suffix(".json.bad").exists()

    def test_stale_done_marker_recovers(self, tmp_path):
        """A done marker whose cache entry was pruned is reset and re-run."""
        spool_root = tmp_path / "spool"
        cache = SweepCache(tmp_path / "cache")
        spool = JobSpool(spool_root)
        job_id = spool.submit(BASE)
        spool.mark_done(
            job_id, key="0" * 32, duration=0.0, worker_id="ghost"
        )
        backend = DistributedBackend(
            spool_root, cache=cache, timeout=120.0, local_workers=1
        )
        [(result, _)] = backend.execute([BASE])
        assert results_identical(result, run_scenario(BASE))
        assert spool.done_info(job_id)["worker"] != "ghost"


class TestDistributedBackend:
    def test_backends_bit_identical_on_grid(self, tmp_path):
        """Serial, process, and distributed (2 real worker processes)
        produce the same ColocationResults, bit for bit."""
        grid = _grid()
        serial = SweepEngine(backend=SerialBackend()).run(grid)
        process = SweepEngine(backend=ProcessBackend(2)).run(grid)
        cache = SweepCache(tmp_path / "cache")
        distributed = SweepEngine(
            cache=cache,
            backend=DistributedBackend(
                tmp_path / "spool", cache=cache, timeout=300.0, local_workers=2
            ),
        ).run(grid)
        assert len(serial) == len(process) == len(distributed) == len(grid)
        for a, b, c in zip(serial, process, distributed):
            assert results_identical(a.result, b.result)
            assert results_identical(a.result, c.result)

    def test_results_read_back_through_shared_cache(self, tmp_path):
        """A second submitter with the same cache gets pure hits."""
        cache = SweepCache(tmp_path / "cache")
        spool_root = tmp_path / "spool"
        spool = JobSpool(spool_root)
        for scenario in _grid().scenarios():
            spool.submit(scenario)
        run_worker(spool, cache=cache, exit_when_idle=True)
        warm = SweepEngine(
            cache=cache,
            backend=DistributedBackend(spool_root, cache=cache, timeout=60.0),
        ).run(_grid())
        assert all(outcome.from_cache for outcome in warm)

    def test_engine_skips_redundant_write_back(self, tmp_path):
        """Workers already published into the shared cache; the submitting
        engine must not re-pickle every result on top of that."""
        cache = SweepCache(tmp_path / "cache")
        puts = []
        original_put = cache.put
        cache.put = lambda key, result: (  # instance-level spy
            puts.append(key), original_put(key, result))
        engine = SweepEngine(
            cache=cache,
            backend=DistributedBackend(
                tmp_path / "spool", cache=cache, timeout=300.0, local_workers=1
            ),
        )
        (outcome,) = engine.run([BASE])
        assert not outcome.from_cache
        assert puts == []                       # no submitter-side rewrite
        # The probe miss is counted once; the transport read-back is not
        # a lookup and must not inflate the hit rate.
        assert (cache.hits, cache.misses) == (0, 1)

    def test_empty_batch_is_noop(self, tmp_path):
        backend = DistributedBackend(tmp_path / "spool")
        assert backend.execute([]) == []

    def test_timeout_raises(self, tmp_path):
        backend = DistributedBackend(
            tmp_path / "spool", cache=SweepCache(tmp_path / "cache"),
            timeout=0.2, poll_interval=0.01,
        )
        with pytest.raises(TimeoutError, match="1 of 1 jobs outstanding"):
            backend.execute([BASE])  # no workers attached: nothing progresses


class TestBackendFromEnv:
    def test_unset_means_default(self):
        assert backend_from_env({}) is None

    def test_serial_and_process(self):
        assert isinstance(
            backend_from_env({"REPRO_SWEEP_BACKEND": "serial"}), SerialBackend
        )
        assert isinstance(
            backend_from_env({"REPRO_SWEEP_BACKEND": "process"}), ProcessBackend
        )

    def test_distributed_requires_spool(self, tmp_path):
        with pytest.raises(ValueError, match="REPRO_SWEEP_SPOOL"):
            backend_from_env({"REPRO_SWEEP_BACKEND": "distributed"})
        backend = backend_from_env(
            {
                "REPRO_SWEEP_BACKEND": "distributed",
                "REPRO_SWEEP_SPOOL": str(tmp_path / "spool"),
                "REPRO_SWEEP_WORKERS": "2",
            }
        )
        assert isinstance(backend, DistributedBackend)
        assert backend.spool_root == tmp_path / "spool"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown REPRO_SWEEP_BACKEND"):
            backend_from_env({"REPRO_SWEEP_BACKEND": "quantum"})
