"""SweepCache: content addressing, persistence, corruption recovery."""

import dataclasses
import pickle

import pytest

import repro.sweep.cache as cache_module
from repro.sweep import Scenario, SweepCache
from repro.sweep.cache import (
    FORMAT_VERSION,
    atomic_write_bytes,
    code_fingerprint,
    stable_hash,
)


@pytest.fixture()
def cache(tmp_path):
    return SweepCache(tmp_path / "sweeps")


def _scenario(**kwargs) -> Scenario:
    defaults = {"service": "mongodb", "apps": ("kmeans",), "seed": 4}
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestStableHash:
    def test_stable_across_calls(self):
        payload = {"b": 2, "a": [1, 2, 3]}
        assert stable_hash(payload) == stable_hash(payload)

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_change_changes_hash(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_length_parameter(self):
        assert len(stable_hash({"a": 1}, length=16)) == 16


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "sub" / "file.bin"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"

    def test_leaves_no_tmp_files(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"payload")
        assert [p.name for p in tmp_path.iterdir()] == ["file.bin"]

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "file.bin"
        atomic_write_bytes(target, b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"


class TestKeying:
    def test_same_scenario_same_key(self, cache):
        assert cache.key(_scenario()) == cache.key(_scenario())

    @pytest.mark.parametrize(
        "change",
        [
            {"service": "nginx"},
            {"apps": ("canneal",)},
            {"apps": ("kmeans", "canneal")},
            {"policy": "precise"},
            {"load_fraction": 0.5},
            {"decision_interval": 2.0},
            {"monitor_epoch": 0.2},
            {"slack_threshold": 0.2},
            {"horizon": 100.0},
            {"seed": 5},
            {"stop_when_apps_done": False},
            {"exploration_seed": 1},
        ],
    )
    def test_any_config_change_invalidates(self, cache, change):
        assert cache.key(_scenario()) != cache.key(_scenario(**change))

    def test_policy_kwargs_change_invalidates(self, cache):
        a = _scenario(policy_kwargs=(("slack_threshold", 0.1),))
        b = _scenario(policy_kwargs=(("slack_threshold", 0.2),))
        assert cache.key(a) != cache.key(b)

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_code_change_invalidates(self, cache, monkeypatch):
        before = cache.key(_scenario())
        monkeypatch.setattr(
            cache_module, "code_fingerprint", lambda: "deadbeefdeadbeef"
        )
        assert cache.key(_scenario()) != before


class TestRoundTrip:
    def test_miss_returns_none(self, cache):
        assert cache.get(cache.key(_scenario())) is None
        assert cache.misses == 1

    def test_put_get_round_trip(self, cache):
        key = cache.key(_scenario())
        cache.put(key, {"payload": 42})
        assert cache.get(key) == {"payload": 42}
        assert cache.hits == 1

    def test_contains_and_count(self, cache):
        key = cache.key(_scenario())
        assert key not in cache
        cache.put(key, "value")
        assert key in cache
        assert cache.entry_count() == 1

    def test_clear_removes_entries(self, cache):
        key = cache.key(_scenario())
        cache.put(key, "value")
        assert cache.clear() == 1
        assert cache.get(key) is None

    def test_sharded_layout(self, cache):
        key = cache.key(_scenario())
        cache.put(key, "value")
        assert cache.path(key).parent.name == key[:2]

    def test_env_override_respected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "env-cache"))
        assert SweepCache().root == tmp_path / "env-cache"


class TestStatsAndPrune:
    def test_stats_empty_cache(self, cache):
        stats = cache.stats()
        assert (stats.entries, stats.total_bytes) == (0, 0)
        assert stats.hit_rate == 0.0

    def test_stats_counts_entries_and_bytes(self, cache):
        for seed in range(3):
            cache.put(cache.key(_scenario(seed=seed)), "x" * 100)
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 300

    def test_hit_rate_persists_across_instances(self, tmp_path):
        first = SweepCache(tmp_path / "sweeps")
        key = first.key(_scenario())
        first.put(key, "value")
        first.get(key)                      # hit
        first.get(first.key(_scenario(seed=9)))  # miss
        first.flush_stats()  # normally at exit or every 64th lookup
        fresh = SweepCache(tmp_path / "sweeps")
        stats = fresh.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_counters_flush_automatically_at_threshold(self, tmp_path):
        recorder = SweepCache(tmp_path / "sweeps")
        missing = recorder.key(_scenario(seed=99))
        for _ in range(SweepCache.STATS_FLUSH_EVERY):
            recorder.get(missing)
        observer = SweepCache(tmp_path / "sweeps")
        assert observer.stats().misses == SweepCache.STATS_FLUSH_EVERY

    def test_unrecorded_reads_skip_counters(self, cache):
        key = cache.key(_scenario())
        cache.put(key, "value")
        assert cache.get(key, record=False) == "value"
        assert cache.get("0" * 32, record=False) is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_prune_older_than(self, cache):
        import os
        import time

        old_key = cache.key(_scenario(seed=1))
        new_key = cache.key(_scenario(seed=2))
        cache.put(old_key, "old")
        cache.put(new_key, "new")
        stale = time.time() - 3600.0
        os.utime(cache.path(old_key), (stale, stale))
        pruned = cache.prune(older_than=60.0)
        assert pruned.removed == 1
        assert old_key not in cache
        assert new_key in cache

    def test_prune_max_bytes_evicts_lru(self, cache):
        import os
        import time

        keys = [cache.key(_scenario(seed=seed)) for seed in range(3)]
        for index, key in enumerate(keys):
            cache.put(key, "x" * 1000)
            past = time.time() - 100.0 + index
            os.utime(cache.path(key), (past, past))
        # Reading the oldest entry refreshes it: it must survive the prune.
        assert cache.get(keys[0]) == "x" * 1000
        entry_size = cache.path(keys[0]).stat().st_size
        pruned = cache.prune(max_bytes=entry_size + 10)
        assert pruned.removed == 2
        assert keys[0] in cache
        assert keys[1] not in cache and keys[2] not in cache

    def test_prune_reports_remaining(self, cache):
        cache.put(cache.key(_scenario()), "value")
        result = cache.prune(older_than=3600.0)
        assert result.removed == 0
        assert result.remaining == 1
        assert result.remaining_bytes > 0

    def test_prune_spares_bookkeeping_files(self, cache):
        key = cache.key(_scenario())
        cache.put(key, "value")
        cache.get(key)  # creates stats.json
        cache.prune(older_than=0.0, max_bytes=0)
        assert cache.entry_count() == 0
        stats = cache.stats()
        assert stats.hits == 1  # counters survived the prune


class TestCorruptionRecovery:
    def test_truncated_entry_treated_as_miss_and_deleted(self, cache):
        key = cache.key(_scenario())
        cache.put(key, "value")
        path = cache.path(key)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(key) is None
        assert not path.exists()

    def test_garbage_entry_treated_as_miss_and_deleted(self, cache):
        key = cache.key(_scenario())
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle at all")
        assert cache.get(key) is None
        assert not path.exists()

    def test_version_skew_treated_as_miss(self, cache):
        key = cache.key(_scenario())
        envelope = {"format": FORMAT_VERSION + 1, "result": "stale"}
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(envelope))
        assert cache.get(key) is None
        assert not path.exists()

    def test_recovery_then_refill(self, cache):
        key = cache.key(_scenario())
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"garbage")
        assert cache.get(key) is None
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"
