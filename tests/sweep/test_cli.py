"""The ``python -m repro.sweep`` control plane, driven in-process."""

import json

import pytest

from repro.sweep import JobSpool, Scenario, SweepCache
from repro.sweep.cli import main

BASE_ARGS = [
    "--services", "mongodb",
    "--apps", "kmeans",
    "--loads", "0.5,0.8",
    "--seeds", "4",
    "--horizon", "60",
]


def _submit(spool, cache, *extra):
    return main(
        ["submit", "--spool", str(spool), "--cache", str(cache), *BASE_ARGS, *extra]
    )


class TestSubmit:
    def test_spools_grid(self, tmp_path, capsys):
        assert _submit(tmp_path / "spool", tmp_path / "cache") == 0
        out = capsys.readouterr().out
        assert "spooled 2 scenarios" in out
        spool = JobSpool(tmp_path / "spool")
        assert len(spool.job_ids()) == 2
        scenarios = [spool.load_scenario(job_id) for job_id in spool.job_ids()]
        assert {scenario.load_fraction for scenario in scenarios} == {0.5, 0.8}
        assert all(scenario.horizon == 60.0 for scenario in scenarios)

    def test_resubmit_is_idempotent(self, tmp_path):
        _submit(tmp_path / "spool", tmp_path / "cache")
        _submit(tmp_path / "spool", tmp_path / "cache")
        assert len(JobSpool(tmp_path / "spool").job_ids()) == 2

    def test_multi_app_mix_syntax(self, tmp_path):
        main(
            [
                "submit", "--spool", str(tmp_path / "spool"),
                "--services", "nginx",
                "--apps", "kmeans+canneal", "--apps", "snp",
                "--seeds", "1",
            ]
        )
        spool = JobSpool(tmp_path / "spool")
        mixes = {
            JobSpool(tmp_path / "spool").load_scenario(job_id).apps
            for job_id in spool.job_ids()
        }
        assert mixes == {("kmeans", "canneal"), ("snp",)}

    def test_wait_serves_from_cache_after_worker_drain(self, tmp_path, capsys):
        spool, cache = tmp_path / "spool", tmp_path / "cache"
        _submit(spool, cache)
        main(["worker", "--spool", str(spool), "--cache", str(cache),
              "--exit-when-idle"])
        capsys.readouterr()
        assert _submit(spool, cache, "--wait", "--timeout", "60") == 0
        assert "2 from cache" in capsys.readouterr().out


class TestWorkerAndStatus:
    def test_worker_drains_and_status_reports(self, tmp_path, capsys):
        spool, cache = tmp_path / "spool", tmp_path / "cache"
        _submit(spool, cache)
        assert main(
            ["worker", "--spool", str(spool), "--cache", str(cache),
             "--exit-when-idle", "--worker-id", "cli-test"]
        ) == 0
        assert "executed 2 jobs" in capsys.readouterr().out
        assert main(["status", "--spool", str(spool), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status == {
            "total": 2, "done": 2, "running": 0, "expired": 0, "pending": 0,
            "failed": 0,
        }
        assert SweepCache(cache).entry_count() == 2

    def test_worker_exits_immediately_on_empty_spool(self, tmp_path, capsys):
        assert main(
            ["worker", "--spool", str(tmp_path / "spool"), "--cache",
             str(tmp_path / "cache"), "--exit-when-idle"]
        ) == 0
        assert "executed 0 jobs" in capsys.readouterr().out


class TestCacheCommands:
    def test_stats_empty(self, tmp_path, capsys):
        assert main(
            ["cache", "stats", "--cache", str(tmp_path / "cache"), "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 0 and stats["total_bytes"] == 0

    def test_stats_after_population(self, tmp_path, capsys):
        cache = SweepCache(tmp_path / "cache")
        scenario = Scenario(service="mongodb", apps=("kmeans",))
        key = cache.key(scenario)
        cache.put(key, "payload")
        assert cache.get(key) == "payload"
        cache.flush_stats()  # counters batch in memory until flushed
        main(["cache", "stats", "--cache", str(tmp_path / "cache"), "--json"])
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["hits"] == 1 and stats["misses"] == 0
        assert stats["hit_rate"] == 1.0

    def test_prune_requires_a_bound(self, tmp_path):
        assert main(["cache", "prune", "--cache", str(tmp_path / "cache")]) == 2

    def test_prune_max_bytes(self, tmp_path, capsys):
        cache = SweepCache(tmp_path / "cache")
        for seed in range(3):
            scenario = Scenario(service="mongodb", apps=("kmeans",), seed=seed)
            cache.put(cache.key(scenario), "x" * 1000)
        main(["cache", "prune", "--cache", str(tmp_path / "cache"),
              "--max-bytes", "1100", "--json"])
        pruned = json.loads(capsys.readouterr().out)
        assert pruned["removed"] == 2
        assert pruned["remaining"] == 1
        assert SweepCache(tmp_path / "cache").entry_count() == 1


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_submit_requires_apps(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["submit", "--spool", str(tmp_path / "spool")])
