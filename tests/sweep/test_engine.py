"""SweepEngine: fan-out determinism, memoization, policy registry."""

import pytest

from repro.core.policy import PliantPolicy
from repro.sweep import (
    Scenario,
    SweepCache,
    SweepEngine,
    SweepGrid,
    register_policy,
    registered_policies,
    results_identical,
    run_scenario,
)
from repro.sweep.engine import POLICY_REGISTRY, make_policy

#: Short-horizon scenario template: fast but long enough for decisions.
BASE = Scenario(service="mongodb", apps=("kmeans",), horizon=60.0, seed=4)


def _grid(loads=(0.5, 0.8)) -> SweepGrid:
    return SweepGrid(
        services=("mongodb",),
        app_mixes=(("kmeans",),),
        load_fractions=loads,
        seeds=(4,),
        base=BASE,
    )


class TestPolicyRegistry:
    def test_pliant_gets_scenario_seed(self):
        policy = make_policy(Scenario(service="nginx", apps=("kmeans",), seed=7))
        assert policy.name == "pliant"

    def test_precise(self):
        scenario = Scenario(service="nginx", apps=("kmeans",), policy="precise")
        assert make_policy(scenario).name == "precise"

    def test_kwargs_forwarded(self):
        scenario = Scenario(
            service="nginx",
            apps=("kmeans",),
            policy="core-reclaim-only",
            policy_kwargs=(("slack_threshold", 0.2),),
        )
        assert make_policy(scenario).name == "core-reclaim-only"

    def test_unknown_policy_raises_with_known_names(self):
        scenario = Scenario(service="nginx", apps=("kmeans",), policy="nope")
        with pytest.raises(ValueError, match="pliant"):
            make_policy(scenario)

    def test_unknown_policy_error_mentions_registration(self):
        scenario = Scenario(service="nginx", apps=("kmeans",), policy="nope")
        with pytest.raises(ValueError, match="register_policy"):
            make_policy(scenario)


class TestRegisterPolicy:
    @pytest.fixture(autouse=True)
    def _restore_registry(self):
        before = dict(POLICY_REGISTRY)
        yield
        POLICY_REGISTRY.clear()
        POLICY_REGISTRY.update(before)

    def test_registered_policy_resolves_by_name(self):
        from repro.core.baselines import PrecisePolicy

        register_policy("custom-precise", lambda sc, kw: PrecisePolicy())
        scenario = Scenario(
            service="nginx", apps=("kmeans",), policy="custom-precise"
        )
        assert make_policy(scenario).name == "precise"
        assert "custom-precise" in registered_policies()

    def test_builder_sees_scenario_and_kwargs(self):
        from repro.core.baselines import CoreReclaimOnlyPolicy

        seen = {}

        def builder(scenario, kwargs):
            seen["seed"] = scenario.seed
            seen["kwargs"] = kwargs
            return CoreReclaimOnlyPolicy(**kwargs)

        register_policy("spy", builder)
        scenario = Scenario(
            service="nginx",
            apps=("kmeans",),
            policy="spy",
            policy_kwargs=(("slack_threshold", 0.2),),
            seed=11,
        )
        make_policy(scenario)
        assert seen == {"seed": 11, "kwargs": {"slack_threshold": 0.2}}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("pliant", lambda sc, kw: None)

    def test_overwrite_allowed_explicitly(self):
        from repro.core.baselines import PrecisePolicy

        register_policy("pliant", lambda sc, kw: PrecisePolicy(), overwrite=True)
        scenario = Scenario(service="nginx", apps=("kmeans",), policy="pliant")
        assert make_policy(scenario).name == "precise"

    def test_non_callable_builder_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            register_policy("broken", "not-a-builder")

    def test_registered_policies_sorted(self):
        names = registered_policies()
        assert list(names) == sorted(names)
        assert "pliant" in names


class TestDeterminism:
    def test_run_scenario_reproducible(self):
        a = run_scenario(BASE)
        b = run_scenario(BASE)
        assert results_identical(a, b)

    def test_seed_changes_results(self):
        from dataclasses import replace

        a = run_scenario(BASE)
        b = run_scenario(replace(BASE, seed=5))
        assert not results_identical(a, b)

    def test_serial_vs_parallel_bit_identical(self):
        serial = SweepEngine(workers=1).run(_grid())
        parallel = SweepEngine(workers=2).run(_grid())
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert a.scenario == b.scenario
            assert results_identical(a.result, b.result)

    def test_outcomes_in_grid_order(self):
        outcomes = SweepEngine(workers=2).run(_grid(loads=(0.8, 0.5, 0.6)))
        assert [o.scenario.load_fraction for o in outcomes] == [0.8, 0.5, 0.6]


class TestMemoization:
    def test_cold_then_warm(self, tmp_path):
        engine = SweepEngine(workers=1, cache=SweepCache(tmp_path))
        cold = engine.run(_grid())
        warm = engine.run(_grid())
        assert all(not o.from_cache for o in cold)
        assert all(o.from_cache for o in warm)
        for a, b in zip(cold, warm):
            assert results_identical(a.result, b.result)

    def test_cache_shared_across_engines(self, tmp_path):
        SweepEngine(workers=1, cache=SweepCache(tmp_path)).run(_grid())
        warm = SweepEngine(workers=1, cache=SweepCache(tmp_path)).run(_grid())
        assert all(o.from_cache for o in warm)

    def test_config_change_misses(self, tmp_path):
        from dataclasses import replace

        engine = SweepEngine(workers=1, cache=SweepCache(tmp_path))
        engine.run([BASE])
        changed = engine.run([replace(BASE, load_fraction=0.9)])
        assert not changed[0].from_cache

    def test_corrupted_entry_recomputed(self, tmp_path):
        cache = SweepCache(tmp_path)
        engine = SweepEngine(workers=1, cache=cache)
        (cold,) = engine.run([BASE])
        path = cache.path(cache.key(BASE))
        path.write_bytes(b"corrupted beyond repair")
        (recovered,) = engine.run([BASE])
        assert not recovered.from_cache
        assert results_identical(cold.result, recovered.result)
        # The recomputed result is re-stored and readable again.
        (warm,) = engine.run([BASE])
        assert warm.from_cache

    def test_force_bypasses_cache_read(self, tmp_path):
        engine = SweepEngine(workers=1, cache=SweepCache(tmp_path))
        engine.run([BASE])
        (forced,) = engine.run([BASE], force=True)
        assert not forced.from_cache

    def test_uncached_engine_always_computes(self):
        engine = SweepEngine(workers=1)
        first = engine.run([BASE])
        second = engine.run([BASE])
        assert not first[0].from_cache and not second[0].from_cache


class TestApi:
    def test_run_results_returns_bare_results(self):
        results = SweepEngine(workers=1).run_results(_grid(loads=(0.5,)))
        assert len(results) == 1
        assert results[0].service_name == "mongodb"

    def test_run_one(self):
        result = SweepEngine(workers=1).run_one(BASE)
        assert result.policy_name == "pliant"

    def test_effective_workers_bounded_by_pending(self):
        engine = SweepEngine(workers=8)
        assert engine.effective_workers(pending=3) == 3
        assert engine.effective_workers(pending=0) == 1

    def test_accepts_plain_scenario_list(self):
        outcomes = SweepEngine(workers=1).run([BASE])
        assert outcomes[0].scenario == BASE

    def test_duration_recorded_for_computed(self):
        (outcome,) = SweepEngine(workers=1).run([BASE])
        assert outcome.duration > 0.0
