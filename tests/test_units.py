"""Unit-conversion helpers."""

import pytest

from repro import units


class TestTime:
    def test_usec_roundtrip(self):
        assert units.to_usec(units.usec(150)) == pytest.approx(150)

    def test_msec_roundtrip(self):
        assert units.to_msec(units.msec(10)) == pytest.approx(10)

    def test_usec_is_seconds(self):
        assert units.usec(1_000_000) == pytest.approx(1.0)

    def test_msec_is_seconds(self):
        assert units.msec(1000) == pytest.approx(1.0)

    def test_ordering(self):
        assert units.usec(1) < units.msec(1) < units.SEC


class TestSizes:
    def test_mb(self):
        assert units.mb(1) == 1024 * 1024

    def test_gb(self):
        assert units.gb(1) == 1024**3

    def test_kb_constant(self):
        assert units.KB == 1024


class TestRates:
    def test_gbps_is_bytes_per_second(self):
        assert units.gbps(8) == pytest.approx(1e9)

    def test_memory_bandwidth(self):
        assert units.gbytes_per_sec(1) == pytest.approx(1e9)
