"""Approximation knobs and perforation helpers."""

import numpy as np
import pytest

from repro.apps.knobs import (
    Knob,
    LoopPerforation,
    PrecisionReduction,
    SyncElision,
    perforated_count,
    perforated_indices,
)


class TestKnobBase:
    def test_all_values_includes_precise_first(self):
        knob = LoopPerforation("loop", (0.5, 0.3))
        assert knob.all_values() == (1.0, 0.5, 0.3)

    def test_rejects_precise_in_candidates(self):
        with pytest.raises(ValueError):
            Knob(name="x", precise_value=1, candidates=(1, 2))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Knob(name="", precise_value=1, candidates=(2,))


class TestLoopPerforation:
    def test_valid_fractions(self):
        LoopPerforation("loop", (0.99, 0.01))

    @pytest.mark.parametrize("bad", [0.0, 1.0, 1.5, -0.2])
    def test_invalid_fractions(self, bad):
        with pytest.raises(ValueError):
            LoopPerforation("loop", (bad,))


class TestSyncElision:
    def test_boolean_values(self):
        knob = SyncElision("locks")
        assert knob.precise_value is False
        assert knob.candidates == (True,)


class TestPrecisionReduction:
    def test_default_candidates(self):
        knob = PrecisionReduction("prec")
        assert knob.precise_value == "float64"
        assert knob.candidates == ("float32", "float16")

    def test_dtype(self):
        assert PrecisionReduction.dtype("float32") == np.dtype("float32")

    def test_bytes(self):
        assert PrecisionReduction.bytes_per_element("float64") == 8
        assert PrecisionReduction.bytes_per_element("float16") == 2

    def test_traffic_ratio(self):
        assert PrecisionReduction.traffic_ratio("float32") == pytest.approx(0.5)

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            PrecisionReduction("prec", ("int8",))


class TestPerforatedCount:
    def test_full_keep(self):
        assert perforated_count(100, 1.0) == 100

    def test_half(self):
        assert perforated_count(100, 0.5) == 50

    def test_at_least_one(self):
        assert perforated_count(100, 0.001) == 1

    def test_zero_length(self):
        assert perforated_count(0, 0.5) == 0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            perforated_count(10, 0.0)
        with pytest.raises(ValueError):
            perforated_count(10, 1.5)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            perforated_count(-1, 0.5)


class TestPerforatedIndices:
    def test_full_keep_is_identity(self):
        assert np.array_equal(perforated_indices(10, 1.0), np.arange(10))

    def test_deterministic(self):
        a = perforated_indices(1000, 0.37)
        b = perforated_indices(1000, 0.37)
        assert np.array_equal(a, b)

    def test_in_range_and_sorted(self):
        idx = perforated_indices(500, 0.3)
        assert idx.min() >= 0 and idx.max() < 500
        assert np.array_equal(idx, np.sort(idx))

    def test_unique(self):
        idx = perforated_indices(100, 0.9)
        assert len(np.unique(idx)) == len(idx)

    def test_roughly_even_spacing(self):
        idx = perforated_indices(1000, 0.25)
        gaps = np.diff(idx)
        assert gaps.max() - gaps.min() <= 1

    def test_count_close_to_fraction(self):
        idx = perforated_indices(1000, 0.4)
        assert len(idx) == pytest.approx(400, abs=2)
