"""Contract tests every one of the 24 kernels must satisfy.

These execute each real kernel (precise + its most aggressive variant), so
they double as integration tests of the measurement pipeline.
"""

import numpy as np
import pytest

from repro.apps import ALL_APP_NAMES, VariantSpec, make_app

#: Paper constraint: instrumentation overhead averages 3.8%, max 8.9%.
MAX_DYNRIO_OVERHEAD = 0.089


@pytest.fixture(scope="module")
def measured():
    """Precise + most-aggressive measurement for every app (run once)."""
    out = {}
    for name in ALL_APP_NAMES:
        app = make_app(name)
        knobs = app.knobs()
        aggressive = VariantSpec(
            {key: knob.candidates[-1] for key, knob in knobs.items()}
        )
        out[name] = (app, app.precise_run(seed=0), app.measure(aggressive, seed=0))
    return out


@pytest.mark.parametrize("name", ALL_APP_NAMES)
class TestKernelContract:
    def test_knobs_exist(self, name, measured):
        app, _, _ = measured[name]
        assert len(app.knobs()) >= 1

    def test_precise_run_does_work(self, name, measured):
        _, precise, _ = measured[name]
        assert precise.counters.work > 0
        assert precise.counters.mem_traffic > 0
        assert precise.counters.footprint > 0

    def test_aggressive_variant_is_faster(self, name, measured):
        _, _, variant = measured[name]
        assert variant.time_factor < 1.0

    def test_time_factor_above_fixed_floor(self, name, measured):
        _, _, variant = measured[name]
        assert variant.time_factor >= 0.18

    def test_inaccuracy_finite_and_bounded(self, name, measured):
        _, _, variant = measured[name]
        assert 0.0 <= variant.inaccuracy_pct < 100.0

    def test_traffic_rate_in_clamp(self, name, measured):
        _, _, variant = measured[name]
        assert 0.15 <= variant.traffic_rate_factor <= 1.05

    def test_footprint_factor_in_clamp(self, name, measured):
        _, _, variant = measured[name]
        assert 0.10 <= variant.footprint_factor <= 1.10

    def test_deterministic_precise_output(self, name, measured):
        app, precise, _ = measured[name]
        again = make_app(name).precise_run(seed=0)
        assert precise.counters.work == pytest.approx(again.counters.work)

    def test_seed_changes_dataset(self, name, measured):
        app, precise, _ = measured[name]
        other = make_app(name).precise_run(seed=99)
        # Work may coincide; traffic+work identical for different seeds
        # would suggest the rng is ignored.
        same = precise.counters.work == other.counters.work and (
            precise.counters.mem_traffic == other.counters.mem_traffic
        )
        if same:
            a, b = precise.output, other.output
            if isinstance(a, np.ndarray):
                assert not np.array_equal(a, b)
            else:
                assert a != b

    def test_metadata_sane(self, name, measured):
        app, _, _ = measured[name]
        md = app.metadata
        assert 10.0 <= md.nominal_exec_time <= 120.0
        assert 0.5 <= md.parallel_fraction <= 1.0
        assert 0.0 < md.dynrio_overhead <= MAX_DYNRIO_OVERHEAD
        assert md.profile.membw_per_core > 0
        assert md.profile.llc_footprint_bytes > 0


def test_mean_dynrio_overhead_matches_paper(measured):
    overheads = [app.metadata.dynrio_overhead for app, _, _ in measured.values()]
    assert np.mean(overheads) == pytest.approx(0.038, abs=0.006)
    assert max(overheads) == pytest.approx(0.089, abs=0.001)


def test_all_apps_offer_admissible_variant(measured):
    """Every app must have at least one single-knob variant within the 5%
    budget (otherwise its approximation ladder would be empty)."""
    for name, (app, _, _) in measured.items():
        mildest = []
        for key, knob in app.knobs().items():
            mv = app.measure(VariantSpec({key: knob.candidates[0]}), seed=0)
            mildest.append(mv.inaccuracy_pct)
        assert min(mildest) <= 5.0, f"{name}: no admissible variant"
