"""BioPerf shared sequence library."""

import numpy as np
import pytest

from repro.apps.bioperf._seqlib import (
    GAP_SYMBOL,
    _horizontal_gap_closure,
    encode_kmers,
    mutate_sequence,
    needleman_wunsch,
    pad_alignment,
    random_sequence,
    sequence_family,
    smith_waterman_score,
    sum_of_pairs_score,
)
from repro.rng import generator


class TestSequenceGeneration:
    def test_alphabet_respected(self):
        seq = random_sequence(generator(1), 500, alphabet=4)
        assert seq.min() >= 0 and seq.max() < 4

    def test_mutation_rate(self):
        rng = generator(2)
        seq = random_sequence(rng, 2000)
        mutated = mutate_sequence(rng, seq, substitution_rate=0.2)
        changed = (seq != mutated).mean()
        assert 0.1 < changed < 0.25  # 0.2 * (3/4 actually change)

    def test_indels_change_length(self):
        rng = generator(3)
        seq = random_sequence(rng, 500)
        mutated = mutate_sequence(rng, seq, 0.0, indel_rate=0.2)
        assert len(mutated) != len(seq)

    def test_family_related(self):
        family = sequence_family(generator(4), 4, 100, substitution_rate=0.1,
                                 indel_rate=0.0)
        a, b = family[0], family[1]
        identity = (a == b).mean()
        assert identity > 0.6  # far above the 0.25 random baseline


class TestNeedlemanWunsch:
    def test_identical_sequences(self):
        seq = random_sequence(generator(5), 40)
        score, ga, gb = needleman_wunsch(seq, seq)
        assert score == pytest.approx(2.0 * len(seq))
        assert np.array_equal(ga, gb)

    def test_gapped_rows_equal_length(self):
        rng = generator(6)
        a, b = random_sequence(rng, 30), random_sequence(rng, 38)
        _, ga, gb = needleman_wunsch(a, b)
        assert len(ga) == len(gb)

    def test_traceback_preserves_sequences(self):
        rng = generator(7)
        a, b = random_sequence(rng, 25), random_sequence(rng, 31)
        _, ga, gb = needleman_wunsch(a, b)
        assert np.array_equal(ga[ga != GAP_SYMBOL], a)
        assert np.array_equal(gb[gb != GAP_SYMBOL], b)

    def test_band_bounds_score(self):
        rng = generator(8)
        a = random_sequence(rng, 40)
        b = mutate_sequence(rng, a, 0.1, 0.05)
        full, _, _ = needleman_wunsch(a, b)
        banded, _, _ = needleman_wunsch(a, b, band=6)
        assert banded <= full + 1e-9


class TestSmithWaterman:
    def test_exact_substring(self):
        rng = generator(9)
        b = random_sequence(rng, 80)
        a = b[20:40].copy()
        assert smith_waterman_score(a, b) == pytest.approx(2.0 * len(a))

    def test_nonnegative(self):
        rng = generator(10)
        a, b = random_sequence(rng, 20), random_sequence(rng, 20)
        assert smith_waterman_score(a, b) >= 0.0

    def test_local_beats_unrelated_flanks(self):
        rng = generator(11)
        core = random_sequence(rng, 15)
        hay = np.concatenate([random_sequence(rng, 30), core, random_sequence(rng, 30)])
        assert smith_waterman_score(core, hay) >= 0.8 * 2.0 * len(core)


class TestGapClosure:
    def test_matches_naive_recurrence(self):
        rng = generator(12)
        candidate = rng.normal(0, 5, size=50)
        gap = -2.0
        fast = _horizontal_gap_closure(candidate, gap)
        slow = candidate.copy()
        for j in range(1, len(slow)):
            slow[j] = max(slow[j], slow[j - 1] + gap)
        assert np.allclose(fast, slow)


class TestKmers:
    def test_count(self):
        seq = random_sequence(generator(13), 100)
        assert len(encode_kmers(seq, 4)) == 97

    def test_codes_unique_per_kmer(self):
        a = np.asarray([0, 1, 2, 3])
        b = np.asarray([3, 2, 1, 0])
        assert encode_kmers(a, 4)[0] != encode_kmers(b, 4)[0]

    def test_short_sequence(self):
        assert len(encode_kmers(np.asarray([1, 2]), 4)) == 0


class TestSumOfPairs:
    def test_identical_rows(self):
        row = random_sequence(generator(14), 30)
        alignment = np.stack([row, row, row])
        assert sum_of_pairs_score(alignment) == pytest.approx(3 * 2.0 * 30)

    def test_gaps_penalized(self):
        row = random_sequence(generator(15), 10)
        gapped = row.copy()
        gapped[0] = GAP_SYMBOL
        with_gap = sum_of_pairs_score(np.stack([row, gapped]))
        without = sum_of_pairs_score(np.stack([row, row]))
        assert with_gap < without


class TestPadAlignment:
    def test_rectangular(self):
        rows = [np.asarray([1, 2, 3]), np.asarray([1, 2])]
        padded = pad_alignment(rows)
        assert padded.shape == (2, 3)
        assert padded[1, 2] == GAP_SYMBOL
