"""Quality metric helpers."""

import numpy as np
import pytest

from repro.apps import quality


class TestCostIncrease:
    def test_identity_zero(self):
        assert quality.cost_increase_pct(10.0, 10.0) == 0.0

    def test_increase(self):
        assert quality.cost_increase_pct(11.0, 10.0) == pytest.approx(10.0)

    def test_improvement_clamps_to_zero(self):
        assert quality.cost_increase_pct(9.0, 10.0) == 0.0

    def test_zero_precise(self):
        assert quality.cost_increase_pct(0.0, 0.0) == 0.0
        assert quality.cost_increase_pct(1.0, 0.0) == 100.0


class TestScoreDrop:
    def test_drop(self):
        assert quality.score_drop_pct(90.0, 100.0) == pytest.approx(10.0)

    def test_gain_clamps(self):
        assert quality.score_drop_pct(110.0, 100.0) == 0.0

    def test_negative_scores(self):
        # Log-likelihoods: -110 is worse than -100.
        assert quality.score_drop_pct(-110.0, -100.0) == pytest.approx(10.0)


class TestAccuracyDrop:
    def test_percentage_points(self):
        assert quality.accuracy_drop_pct(0.90, 0.85) == pytest.approx(5.0)

    def test_clamps(self):
        assert quality.accuracy_drop_pct(0.80, 0.85) == 0.0


class TestRmse:
    def test_identical_zero(self):
        a = np.ones((4, 4))
        assert quality.rmse_pct(a, a) == 0.0

    def test_scaled_by_range(self):
        precise = np.asarray([0.0, 10.0])
        approx = np.asarray([1.0, 10.0])
        # RMSE = sqrt(0.5), range 10 -> ~7.07%
        assert quality.rmse_pct(approx, precise) == pytest.approx(7.07, abs=0.01)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quality.rmse_pct(np.ones(3), np.ones(4))

    def test_constant_precise_uses_magnitude(self):
        precise = np.full(4, 5.0)
        approx = np.full(4, 5.5)
        assert quality.rmse_pct(approx, precise) == pytest.approx(10.0)


class TestRelativeError:
    def test_identity(self):
        assert quality.relative_error_pct(np.ones(3), np.ones(3)) == 0.0

    def test_ten_percent(self):
        assert quality.relative_error_pct(
            np.asarray([1.1]), np.asarray([1.0])
        ) == pytest.approx(10.0)


class TestSetF1Loss:
    def test_identical_sets(self):
        assert quality.set_f1_loss_pct({1, 2, 3}, {1, 2, 3}) == 0.0

    def test_disjoint_sets(self):
        assert quality.set_f1_loss_pct({1, 2}, {3, 4}) == 100.0

    def test_both_empty(self):
        assert quality.set_f1_loss_pct(set(), set()) == 0.0

    def test_partial_overlap(self):
        loss = quality.set_f1_loss_pct({1, 2, 3, 4}, {1, 2})
        assert 0 < loss < 100


class TestAssignmentDisagreement:
    def test_identical(self):
        labels = np.asarray([0, 1, 2])
        assert quality.assignment_disagreement_pct(labels, labels) == 0.0

    def test_half(self):
        a = np.asarray([0, 0, 1, 1])
        b = np.asarray([0, 0, 0, 0])
        assert quality.assignment_disagreement_pct(a, b) == pytest.approx(50.0)

    def test_empty(self):
        empty = np.asarray([])
        assert quality.assignment_disagreement_pct(empty, empty) == 0.0


class TestRankCorrelationLoss:
    def test_identical_rankings(self):
        r = np.arange(10, dtype=float)
        assert quality.rank_correlation_loss_pct(r, r) == pytest.approx(0.0)

    def test_reversed_rankings(self):
        r = np.arange(10, dtype=float)
        assert quality.rank_correlation_loss_pct(r[::-1], r) == pytest.approx(100.0)

    def test_nan_inputs_penalized(self):
        a = np.asarray([np.nan, 1.0, 2.0])
        b = np.asarray([0.0, 1.0, 2.0])
        assert quality.rank_correlation_loss_pct(a, b) == 100.0
