"""App registry: the 24 paper applications."""

import pytest

from repro.apps import ALL_APP_NAMES, SUITES, make_app


class TestRegistry:
    def test_twenty_four_apps(self):
        assert len(ALL_APP_NAMES) == 24

    def test_suite_partition(self):
        from_suites = [name for names in SUITES.values() for name in names]
        assert sorted(from_suites) == sorted(ALL_APP_NAMES)

    def test_paper_suite_sizes(self):
        assert len(SUITES["parsec"]) == 3
        assert len(SUITES["splash2"]) == 3
        assert len(SUITES["minebench"]) == 10
        assert len(SUITES["bioperf"]) == 8

    @pytest.mark.parametrize("name", ALL_APP_NAMES)
    def test_instantiable(self, name):
        app = make_app(name)
        assert app.name == name

    @pytest.mark.parametrize("name", ALL_APP_NAMES)
    def test_suite_metadata_matches(self, name):
        app = make_app(name)
        assert name in SUITES[app.metadata.suite]

    def test_unknown_app(self):
        with pytest.raises(ValueError):
            make_app("doom")

    def test_case_insensitive(self):
        assert make_app("CANNEAL").name == "canneal"

    def test_fresh_instances(self):
        assert make_app("kmeans") is not make_app("kmeans")
