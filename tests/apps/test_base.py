"""ApproximableApp framework: VariantSpec, counters, measurement."""

from typing import Any, Mapping

import numpy as np
import pytest

from repro import units
from repro.apps.base import (
    AppMetadata,
    ApproximableApp,
    KernelCounters,
    VariantSpec,
)
from repro.apps.knobs import Knob, LoopPerforation
from repro.server.resources import ResourceProfile


class ToyApp(ApproximableApp):
    """Minimal app: work = kept iterations, traffic fixed + proportional."""

    metadata = AppMetadata(
        name="toy",
        suite="test",
        nominal_exec_time=10.0,
        parallel_fraction=0.9,
        dynrio_overhead=0.02,
        profile=ResourceProfile(llc_footprint_bytes=units.mb(10)),
    )

    def knobs(self) -> dict[str, Knob]:
        return {"keep": LoopPerforation("keep", (0.5, 0.25))}

    def run_kernel(self, settings: Mapping[str, Any], counters, rng) -> float:
        keep = settings["keep"]
        iterations = int(1000 * keep)
        counters.add(work=iterations, traffic=8.0 * iterations + 2000.0)
        counters.note_footprint(8000.0)
        return float(iterations)

    def quality_loss(self, precise_output, approx_output) -> float:
        return 100.0 * (precise_output - approx_output) / precise_output


class TestVariantSpec:
    def test_empty_is_precise(self):
        assert len(VariantSpec()) == 0

    def test_hashable_and_equal(self):
        a = VariantSpec({"x": 1, "y": 2})
        b = VariantSpec({"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_mapping_interface(self):
        spec = VariantSpec({"x": 0.5})
        assert spec["x"] == 0.5
        assert "x" in spec
        assert dict(spec) == {"x": 0.5}

    def test_is_precise_for(self):
        knobs = {"keep": LoopPerforation("keep", (0.5,))}
        assert VariantSpec({"keep": 1.0}).is_precise_for(knobs)
        assert not VariantSpec({"keep": 0.5}).is_precise_for(knobs)

    def test_repr(self):
        assert "keep=0.5" in repr(VariantSpec({"keep": 0.5}))


class TestCounters:
    def test_accumulate(self):
        counters = KernelCounters()
        counters.add(work=5, traffic=10)
        counters.add(work=1)
        assert counters.work == 6
        assert counters.mem_traffic == 10

    def test_footprint_high_water(self):
        counters = KernelCounters()
        counters.note_footprint(100)
        counters.note_footprint(50)
        assert counters.footprint == 100

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            KernelCounters().add(work=-1)


class TestRunMachinery:
    def test_materialize_fills_defaults(self):
        app = ToyApp()
        settings = app.materialize(VariantSpec())
        assert settings == {"keep": 1.0}

    def test_materialize_rejects_unknown(self):
        with pytest.raises(KeyError):
            ToyApp().materialize(VariantSpec({"ghost": 1}))

    def test_run_deterministic(self):
        app = ToyApp()
        a = app.run(VariantSpec({"keep": 0.5}), seed=3)
        b = app.run(VariantSpec({"keep": 0.5}), seed=3)
        assert a.output == b.output

    def test_precise_run_cached(self):
        app = ToyApp()
        assert app.precise_run(seed=0) is app.precise_run(seed=0)

    def test_kernel_must_do_work(self):
        class LazyApp(ToyApp):
            def run_kernel(self, settings, counters, rng):
                return 0.0

        with pytest.raises(RuntimeError):
            LazyApp().run()


class TestMeasure:
    def test_precise_measures_as_identity(self):
        mv = ToyApp().measure(VariantSpec({"keep": 1.0}))
        assert mv.is_precise
        assert mv.time_factor == 1.0
        assert mv.inaccuracy_pct == 0.0

    def test_time_factor_includes_fixed_share(self):
        mv = ToyApp().measure(VariantSpec({"keep": 0.5}))
        # Raw work ratio is 0.5; fixed-share blending lifts it.
        assert 0.5 < mv.time_factor < 1.0

    def test_deeper_perforation_faster(self):
        app = ToyApp()
        half = app.measure(VariantSpec({"keep": 0.5}))
        quarter = app.measure(VariantSpec({"keep": 0.25}))
        assert quarter.time_factor < half.time_factor
        assert quarter.inaccuracy_pct > half.inaccuracy_pct

    def test_traffic_rate_clamped(self):
        mv = ToyApp().measure(VariantSpec({"keep": 0.25}))
        assert 0.15 <= mv.traffic_rate_factor <= 1.05

    def test_scaled_profile(self):
        app = ToyApp()
        mv = app.measure(VariantSpec({"keep": 0.25}))
        scaled = mv.scaled_profile(app.metadata.profile)
        # Contention scales by the (clamped) traffic rate — at most +5%.
        assert scaled.membw_per_core <= 1.05 * app.metadata.profile.membw_per_core


class TestMetadataValidation:
    def test_rejects_bad_exec_time(self):
        with pytest.raises(ValueError):
            AppMetadata(
                name="x",
                suite="s",
                nominal_exec_time=0.0,
                parallel_fraction=0.5,
                dynrio_overhead=0.01,
                profile=ResourceProfile(),
            )

    def test_rejects_bad_parallel_fraction(self):
        with pytest.raises(ValueError):
            AppMetadata(
                name="x",
                suite="s",
                nominal_exec_time=1.0,
                parallel_fraction=1.5,
                dynrio_overhead=0.01,
                profile=ResourceProfile(),
            )
