"""Per-app behaviors the paper's narrative depends on."""

import pytest

from repro.apps import VariantSpec, make_app


class TestCanneal:
    """Approximation shortens canneal without shedding contention (6.1)."""

    def test_perforation_keeps_contention(self):
        app = make_app("canneal")
        mv = app.measure(VariantSpec({"perforate_moves": 0.28}), seed=0)
        assert mv.time_factor < 0.75
        assert mv.traffic_rate_factor > 0.95

    def test_elision_is_nondeterministic_knob(self):
        app = make_app("canneal")
        assert "elide_swap_locks" in app.knobs()


class TestSnp:
    """Sync elision makes SNP a strong decontention app (6.1)."""

    def test_elision_cuts_traffic_rate(self):
        app = make_app("snp")
        mv = app.measure(VariantSpec({"elide_locks": True}), seed=0)
        assert mv.traffic_rate_factor < 0.5
        assert mv.inaccuracy_pct < 5.0

    def test_elision_shrinks_footprint(self):
        app = make_app("snp")
        mv = app.measure(VariantSpec({"elide_locks": True}), seed=0)
        assert mv.footprint_factor < 1.0


class TestWaterSpatial:
    """Vertical line in Fig. 1: quality drops, execution time barely."""

    def test_perforation_barely_shortens(self):
        app = make_app("water_spatial")
        mv = app.measure(VariantSpec({"perforate_correction": 0.12}), seed=0)
        assert mv.time_factor > 0.85

    def test_has_worst_dynrio_overhead(self):
        from repro.apps import ALL_APP_NAMES

        overheads = {
            name: make_app(name).metadata.dynrio_overhead for name in ALL_APP_NAMES
        }
        assert max(overheads, key=overheads.get) == "water_spatial"


class TestRaytrace:
    """Tiny inaccuracies (Fig. 1 axis < a few %)."""

    def test_all_variants_low_inaccuracy(self):
        app = make_app("raytrace")
        knobs = app.knobs()
        for name, knob in knobs.items():
            for value in knob.candidates:
                mv = app.measure(VariantSpec({name: value}), seed=0)
                assert mv.inaccuracy_pct < 5.0


class TestBayesianRichSpace:
    """bayesian exposes a graded, monotone-ish quality/time trade-off."""

    def test_row_perforation_monotone_time(self):
        app = make_app("bayesian")
        factors = [
            app.measure(VariantSpec({"perforate_rows": keep}), seed=0).time_factor
            for keep in (0.85, 0.55, 0.30)
        ]
        assert factors == sorted(factors, reverse=True)


class TestKMeans:
    def test_iteration_perforation_degrades_quality(self):
        app = make_app("kmeans")
        mild = app.measure(VariantSpec({"perforate_iters": 0.66}), seed=0)
        harsh = app.measure(
            VariantSpec({"perforate_iters": 0.40, "perforate_points": 0.30}), seed=0
        )
        assert harsh.time_factor < mild.time_factor

    def test_async_update_is_elision(self):
        app = make_app("kmeans")
        mv = app.measure(VariantSpec({"async_update": True}), seed=0)
        assert mv.traffic_rate_factor < 1.0


class TestPrecisionKnobs:
    @pytest.mark.parametrize("app_name", ["plsa", "fuzzy_kmeans", "svmrfe"])
    def test_float32_cheap_in_quality(self, app_name):
        app = make_app(app_name)
        mv = app.measure(VariantSpec({"precision": "float32"}), seed=0)
        assert mv.inaccuracy_pct < 2.0
        assert mv.traffic_rate_factor < 1.0


class TestHmmer:
    def test_band_narrowing_loses_hits(self):
        app = make_app("hmmer")
        wide = app.measure(VariantSpec({"viterbi_band": 0.60}), seed=0)
        narrow = app.measure(VariantSpec({"viterbi_band": 0.22}), seed=0)
        assert narrow.time_factor < wide.time_factor
        assert narrow.inaccuracy_pct >= wide.inaccuracy_pct


class TestGlimmer:
    def test_order_reduction_graceful(self):
        app = make_app("glimmer")
        mv = app.measure(VariantSpec({"max_order": 0.4}), seed=0)
        assert mv.inaccuracy_pct < 10.0
        assert mv.time_factor < 1.0


class TestGrappa:
    def test_move_perforation_costs_quality(self):
        app = make_app("grappa")
        mild = app.measure(VariantSpec({"perforate_moves": 0.70}), seed=0)
        harsh = app.measure(VariantSpec({"perforate_moves": 0.32}), seed=0)
        assert harsh.inaccuracy_pct >= mild.inaccuracy_pct
