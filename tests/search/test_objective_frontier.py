"""Objectives (direction-folded metric scores) and Pareto machinery."""

import pytest

from repro.experiment import run_experiment
from repro.search import (
    DEFAULT_OBJECTIVE,
    Objective,
    dominates,
    pareto_indices,
    parse_objective,
    resolve_objectives,
    tolerance_frontier,
)
from repro.sweep.grid import Scenario


@pytest.fixture(scope="module")
def result():
    outcomes = run_experiment(
        [Scenario(service="memcached", apps="kmeans", horizon=8.0,
                  monitor_epoch=0.5)],
        workers=1,
    )
    return outcomes[0].result


class TestParse:
    def test_bare_metric_defaults_to_max(self):
        obj = parse_objective("qos_met_fraction")
        assert obj == Objective("qos_met_fraction", "max")

    def test_explicit_modes(self):
        assert parse_objective("min:mean_inaccuracy_pct").mode == "min"
        assert parse_objective("max:qos_met_fraction").mode == "max"

    def test_spec_round_trips(self):
        for text in ("max:qos_met_fraction", "min:mean_inaccuracy_pct"):
            assert parse_objective(text).spec == text

    def test_objective_passthrough(self):
        obj = Objective("qos_met_fraction")
        assert parse_objective(obj) is obj

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            parse_objective("avg:qos_met_fraction")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            parse_objective(42)

    def test_resolve_defaults_when_empty(self):
        for empty in (None, (), []):
            objectives = resolve_objectives(empty)
            assert objectives == (parse_objective(DEFAULT_OBJECTIVE),)

    def test_resolve_keeps_declaration_order(self):
        objectives = resolve_objectives(
            ("min:mean_inaccuracy_pct", "qos_met_fraction")
        )
        assert [o.spec for o in objectives] == [
            "min:mean_inaccuracy_pct", "max:qos_met_fraction",
        ]


class TestScoring:
    def test_value_reads_registered_metric(self, result):
        value = Objective("qos_met_fraction").value(result)
        assert value is not None and 0.0 <= value <= 1.0

    def test_min_mode_flips_sign(self, result):
        obj_max = Objective("qos_met_fraction", "max")
        obj_min = Objective("qos_met_fraction", "min")
        assert obj_min.score(result) == -obj_max.score(result)

    def test_unknown_metric_raises(self, result):
        with pytest.raises(ValueError, match="unknown metric"):
            Objective("no_such_metric").value(result)

    def test_missing_or_nan_value_scores_worst(self, result):
        from repro.experiment.resultset import METRICS, register_metric

        for name, bad in (
            ("_test_none_metric", lambda r: None),
            ("_test_nan_metric", lambda r: float("nan")),
        ):
            register_metric(name, bad, overwrite=True)
            try:
                assert Objective(name).score(result) == float("-inf")
            finally:
                METRICS.pop(name, None)


class TestDominance:
    def test_dominates_requires_strict_improvement(self):
        assert dominates((1.0, 1.0), (1.0, 0.5))
        assert not dominates((1.0, 1.0), (1.0, 1.0))
        assert not dominates((1.0, 0.0), (0.0, 1.0))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    def test_pareto_indices_keeps_front_in_order(self):
        rows = [(1.0, 0.0), (0.5, 0.5), (0.0, 1.0), (0.4, 0.4)]
        assert pareto_indices(rows) == [0, 1, 2]

    def test_pareto_ties_all_survive(self):
        rows = [(1.0, 0.0), (1.0, 0.0), (0.0, 1.0)]
        assert pareto_indices(rows) == [0, 1, 2]

    def test_tolerance_frontier_prunes_near_duplicates(self):
        items = [(1.0, 10.0), (2.0, 9.99), (3.0, 5.0), (4.0, 4.99)]
        kept = tolerance_frontier(
            items, key=lambda p: p[0], value=lambda p: p[1], tolerance=0.03
        )
        assert kept == [(1.0, 10.0), (3.0, 5.0)]
