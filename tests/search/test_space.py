"""DesignSpace: lazy mixed-radix indexing over an ExperimentSpec.

The load-bearing contract is order parity: ``space.scenario_at(i)`` for
i in range(len(space)) must equal ``spec.scenarios()`` element-wise, so
``GridStrategy`` is bit-identical to exhaustive expansion.
"""

import dataclasses

import pytest

from repro.experiment import ExperimentSpec
from repro.search import DesignSpace

SPEC = ExperimentSpec(
    name="space-under-test",
    base={"service": "memcached", "apps": "kmeans", "horizon": 10.0},
    axes={
        "load_fraction": (0.5, 0.6, 0.7),
        "slack_threshold": (0.05, 0.10),
        "seed": (0, 1),
    },
)


@pytest.fixture(scope="module")
def space():
    return DesignSpace(SPEC)


class TestIndexing:
    def test_len_matches_spec(self, space):
        assert len(space) == len(SPEC) == 12

    def test_coords_index_round_trip(self, space):
        for i in range(len(space)):
            assert space.index(space.coords(i)) == i

    def test_order_matches_spec_scenarios(self, space):
        expanded = SPEC.scenarios()
        assert [space.scenario_at(i) for i in range(len(space))] == expanded

    def test_first_axis_varies_slowest(self, space):
        # Mixed radix: the first declared axis changes only every
        # (len(space) / len(axis0)) scenarios.
        stride = len(space) // 3
        loads = [space.scenario_at(i).load_fraction for i in range(len(space))]
        assert loads == [0.5] * stride + [0.6] * stride + [0.7] * stride

    def test_index_out_of_range(self, space):
        with pytest.raises(IndexError):
            space.scenario_at(len(space))
        with pytest.raises(IndexError):
            space.scenario_at(-1)


class TestMembership:
    def test_index_of_every_grid_point(self, space):
        for i, scenario in enumerate(SPEC.scenarios()):
            assert space.index_of(scenario) == i
            assert space.contains(scenario)

    def test_off_axis_value_not_contained(self, space):
        off = dataclasses.replace(space.scenario_at(0), load_fraction=0.99)
        assert space.index_of(off) is None
        assert not space.contains(off)

    def test_off_base_value_not_contained(self, space):
        # A halving fidelity probe deviates in a *base* field (horizon);
        # axis lookups alone would wrongly claim membership.
        probe = dataclasses.replace(space.scenario_at(5), horizon=4.0)
        assert space.index_of(probe) is None
        assert not space.contains(probe)


class TestNeighbors:
    def test_interior_point_has_one_step_per_axis_direction(self, space):
        center = space.index((1, 0, 0))
        neighbors = space.neighbors(center)
        coords = [space.coords(n) for n in neighbors]
        for c in coords:
            diffs = [abs(a - b) for a, b in zip(c, (1, 0, 0))]
            assert sum(diffs) == 1  # exactly one axis moved, by one step
        assert len(neighbors) == len(set(neighbors)) == 4

    def test_corner_point_clips_to_bounds(self, space):
        neighbors = space.neighbors(space.index((0, 0, 0)))
        assert len(neighbors) == 3
        assert all(0 <= n < len(space) for n in neighbors)

    def test_neighbor_order_deterministic(self, space):
        i = space.index((1, 1, 0))
        assert space.neighbors(i) == space.neighbors(i)
