"""Strategy mechanics that don't need a sweep engine: proposal sets,
rung arithmetic, seeding, and the registry."""

import math

import pytest

from repro.experiment import ExperimentSpec
from repro.search import (
    DesignSpace,
    GridStrategy,
    ParetoGuided,
    RandomStrategy,
    SearchStrategy,
    SuccessiveHalving,
    register_strategy,
    resolve_strategy,
)
from repro.search.strategies import STRATEGIES

SPEC = ExperimentSpec(
    name="strategy-under-test",
    base={"service": "memcached", "apps": "kmeans", "horizon": 30.0,
          "monitor_epoch": 0.5},
    axes={
        "load_fraction": (0.5, 0.6, 0.7, 0.8),
        "slack_threshold": (0.02, 0.05, 0.08, 0.12),
        "seed": (0, 1),
    },
)


@pytest.fixture()
def space():
    return DesignSpace(SPEC)


class TestProtocol:
    def test_builtins_satisfy_protocol(self, space):
        for name, cls in STRATEGIES.items():
            strategy = cls(space, budget=len(space))
            assert isinstance(strategy, SearchStrategy), name


class TestGrid:
    def test_proposes_whole_space_once_in_order(self, space):
        strategy = GridStrategy(space)
        assert not strategy.done()
        assert strategy.propose(None) == SPEC.scenarios()
        assert strategy.done()
        assert strategy.propose(None) == []

    def test_budget_below_space_rejected(self, space):
        with pytest.raises(ValueError, match="exhaustive"):
            GridStrategy(space, budget=len(space) - 1)


class TestRandom:
    def test_samples_budget_unique_points(self, space):
        strategy = RandomStrategy(space, budget=10, rng_seed=7)
        proposed = []
        while not strategy.done():
            proposed.extend(strategy.propose(None))
        assert len(proposed) == 10
        assert len(set(proposed)) == 10
        assert all(space.contains(s) for s in proposed)

    def test_budget_capped_by_space(self, space):
        strategy = RandomStrategy(space, budget=10 * len(space), rng_seed=7)
        proposed = []
        while not strategy.done():
            proposed.extend(strategy.propose(None))
        assert sorted(space.index_of(s) for s in proposed) == list(
            range(len(space))
        )

    def test_same_seed_same_sequence(self, space):
        a = RandomStrategy(space, budget=12, rng_seed=3).propose(None)
        b = RandomStrategy(space, budget=12, rng_seed=3).propose(None)
        c = RandomStrategy(space, budget=12, rng_seed=4).propose(None)
        assert a == b
        assert a != c


class TestHalving:
    def test_requires_budget(self, space):
        with pytest.raises(ValueError, match="budget"):
            SuccessiveHalving(space)

    def test_horizon_axis_rejected(self):
        swept = SPEC.with_axis("horizon", (10.0, 20.0))
        with pytest.raises(ValueError, match="horizon"):
            SuccessiveHalving(DesignSpace(swept), budget=8)

    @pytest.mark.parametrize("budget", [4, 8, 16, 31])
    def test_rung_series_fits_budget(self, space, budget):
        strategy = SuccessiveHalving(space, budget=budget, rng_seed=1)
        assert strategy._series_cost(len(strategy._pool)) <= budget

    def test_early_rungs_probe_reduced_horizon(self, space):
        strategy = SuccessiveHalving(space, budget=16, rng_seed=1)
        first = strategy.propose(None)
        assert all(probe.horizon < 30.0 for probe in first)
        # Fidelity never collapses below a couple of decision intervals.
        assert all(
            probe.horizon >= 2.0 * probe.decision_interval for probe in first
        )

    def test_final_rung_runs_full_fidelity(self, space):
        strategy = SuccessiveHalving(space, budget=16, rng_seed=1)

        class _FakeResult:
            pass

        class _FakeOutcome:
            def __init__(self, scenario, score):
                self.scenario = scenario
                self.result = _FakeResult()
                self.result._score = score

        rounds = []
        score_of = lambda s: -abs(s.load_fraction - 0.6)  # noqa: E731
        original = strategy._score
        strategy._score = lambda outcome: outcome.result._score
        while not strategy.done():
            batch = strategy.propose(None)
            rounds.append(batch)
            strategy.observe(
                [_FakeOutcome(probe, score_of(probe)) for probe in batch]
            )
        strategy._score = original
        assert len(rounds) >= 2
        assert all(probe.horizon == 30.0 for probe in rounds[-1])
        # Pools shrink by ~1/eta each rung.
        sizes = [len(batch) for batch in rounds]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] <= math.ceil(sizes[0] / 3)

    def test_same_seed_same_pool(self, space):
        a = SuccessiveHalving(space, budget=16, rng_seed=5)._pool
        b = SuccessiveHalving(space, budget=16, rng_seed=5)._pool
        c = SuccessiveHalving(space, budget=16, rng_seed=6)._pool
        assert a == b
        assert a != c


class TestPareto:
    def test_first_round_is_pure_exploration(self, space):
        strategy = ParetoGuided(space, budget=16, rng_seed=2, batch_size=8)
        batch = strategy.propose(None)
        assert len(batch) == 8
        assert len(set(batch)) == 8

    def test_proposals_never_repeat_across_rounds(self, space):
        strategy = ParetoGuided(space, budget=len(space), rng_seed=2,
                                batch_size=8)
        seen = set()
        while not strategy.done():
            batch = strategy.propose(None)
            indices = {space.index_of(s) for s in batch}
            assert not (indices & seen)
            seen |= indices
            strategy.observe([])
        assert seen == set(range(len(space)))

    def test_two_objectives_by_default(self, space):
        strategy = ParetoGuided(space, budget=8)
        assert [o.spec for o in strategy.objectives] == [
            "max:qos_met_fraction", "max:sustained_cores_reclaimed",
        ]

    def test_explore_fraction_validated(self, space):
        with pytest.raises(ValueError, match="explore_fraction"):
            ParetoGuided(space, budget=8, explore_fraction=1.5)


class TestRegistry:
    def test_resolve_known_names(self):
        assert resolve_strategy("grid") is GridStrategy
        assert resolve_strategy("halving") is SuccessiveHalving

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="random"):
            resolve_strategy("simulated-annealing")

    def test_register_and_overwrite_guard(self, space):
        class Custom(RandomStrategy):
            name = "custom-test"

        register_strategy("custom-test", Custom)
        try:
            assert resolve_strategy("custom-test") is Custom
            with pytest.raises(ValueError, match="already registered"):
                register_strategy("custom-test", Custom)
            register_strategy("custom-test", RandomStrategy, overwrite=True)
            assert resolve_strategy("custom-test") is RandomStrategy
        finally:
            STRATEGIES.pop("custom-test", None)
