"""``python -m repro.sweep submit --strategy/--budget`` — search via the CLI."""

import pytest

from repro.experiment import ExperimentSpec
from repro.sweep.cli import main


def spec_file(tmp_path):
    spec = ExperimentSpec(
        name="cli-search",
        base={"service": "memcached", "apps": "kmeans", "horizon": 10.0,
              "monitor_epoch": 0.5},
        axes={
            "load_fraction": (0.5, 0.6, 0.7, 0.8),
            "slack_threshold": (0.05, 0.10),
        },
    )
    return spec, spec.save(tmp_path / "exp.json")


def submit_args(tmp_path, path):
    return ["submit", "--spool", str(tmp_path / "spool"),
            "--cache", str(tmp_path / "cache"), "--spec", str(path)]


class TestSubmitSearch:
    def test_search_flags_compose_with_spec(self, tmp_path, capsys):
        _, path = spec_file(tmp_path)
        assert main(
            [*submit_args(tmp_path, path),
             "--strategy", "halving", "--budget", "6", "--rng-seed", "3",
             "--wait", "--workers", "1", "--timeout", "300"]
        ) == 0
        out = capsys.readouterr().out
        assert "search 'halving' evaluated 6 of 8 points" in out
        assert "best point:" in out

    def test_search_spec_file_alone_is_enough(self, tmp_path, capsys):
        spec, _ = spec_file(tmp_path)
        path = spec.with_search(strategy="random", budget=4).save(
            tmp_path / "search.json"
        )
        assert main(
            [*submit_args(tmp_path, path),
             "--wait", "--workers", "1", "--timeout", "300"]
        ) == 0
        assert "search 'random' evaluated 4 of 8 points" in (
            capsys.readouterr().out
        )

    def test_objective_flag_repeats(self, tmp_path, capsys):
        _, path = spec_file(tmp_path)
        assert main(
            [*submit_args(tmp_path, path),
             "--strategy", "random", "--budget", "4",
             "--objective", "max:sustained_cores_reclaimed",
             "--objective", "min:mean_inaccuracy_pct",
             "--wait", "--workers", "1", "--timeout", "300"]
        ) == 0
        assert "max:sustained_cores_reclaimed" in capsys.readouterr().out

    def test_search_requires_wait(self, tmp_path):
        _, path = spec_file(tmp_path)
        with pytest.raises(SystemExit, match="needs --wait"):
            main([*submit_args(tmp_path, path),
                  "--strategy", "random", "--budget", "4"])

    def test_unknown_strategy_fails_loudly(self, tmp_path):
        _, path = spec_file(tmp_path)
        with pytest.raises(ValueError, match="unknown search strategy"):
            main([*submit_args(tmp_path, path),
                  "--strategy", "annealing", "--budget", "4",
                  "--wait", "--workers", "1", "--timeout", "300"])

    def test_plain_submit_unaffected(self, tmp_path, capsys):
        _, path = spec_file(tmp_path)
        assert main(submit_args(tmp_path, path)) == 0
        assert "spooled 8 scenarios" in capsys.readouterr().out
