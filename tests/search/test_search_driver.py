"""End-to-end search acceptance: parity, determinism, budgets, resume.

The contracts that make budgeted search trustworthy:

* ``strategy="grid"`` is bit-identical to the plain exhaustive path on
  every backend — the parity reference.
* Stochastic strategies under a fixed ``rng_seed`` evaluate the *same
  point sequence* serial vs. distributed (results are a pure function
  of the scenario, so observations can't diverge).
* ``budget`` is a hard ceiling on unique evaluations.
* Re-running an interrupted/finished search replays the sequence out of
  the content-addressed cache.
"""

import pytest

from repro.experiment import ExperimentSpec, run_experiment
from repro.search import SearchResult
from repro.sweep import (
    DistributedBackend,
    ProcessBackend,
    SerialBackend,
    SweepCache,
)

SPEC = ExperimentSpec(
    name="search-acceptance",
    base={
        "service": "memcached",
        "apps": "kmeans",
        "horizon": 10.0,
        "monitor_epoch": 0.5,
    },
    axes={
        "load_fraction": (0.5, 0.6, 0.7, 0.8),
        "slack_threshold": (0.05, 0.10),
        "decision_interval": (1.0, 2.0),
    },
)


def _distributed(tmp_path, tag=""):
    return DistributedBackend(
        tmp_path / f"spool{tag}",
        cache=SweepCache(tmp_path / f"cache{tag}"),
        local_workers=2,
        timeout=300.0,
        poll_interval=0.05,
    )


def _sequence(result):
    return [outcome.scenario for outcome in result]


class TestGridParity:
    def test_grid_identical_to_plain_on_all_backends(self, tmp_path):
        plain = run_experiment(SPEC, backend=SerialBackend())
        for backend in (
            SerialBackend(),
            ProcessBackend(2),
            _distributed(tmp_path),
        ):
            searched = run_experiment(SPEC, strategy="grid", backend=backend)
            assert isinstance(searched, SearchResult)
            assert searched.identical(plain), type(backend).__name__

    def test_grid_search_result_accounting(self):
        result = run_experiment(SPEC, strategy="grid", workers=1)
        assert result.evaluations == result.space_size == len(SPEC)
        assert result.fraction_evaluated == 1.0
        assert len(result.rounds) == 1


class TestDeterminismAcrossBackends:
    @pytest.mark.parametrize("strategy", ["halving", "pareto"])
    def test_serial_and_distributed_evaluate_same_sequence(
        self, tmp_path, strategy
    ):
        serial = run_experiment(
            SPEC, strategy=strategy, budget=8, rng_seed=11,
            backend=SerialBackend(),
        )
        distributed = run_experiment(
            SPEC, strategy=strategy, budget=8, rng_seed=11,
            backend=_distributed(tmp_path, tag=strategy),
        )
        assert _sequence(serial) == _sequence(distributed)
        assert serial.identical(distributed)

    def test_different_seed_different_sequence(self):
        a = run_experiment(SPEC, strategy="random", budget=6, rng_seed=1,
                           workers=1)
        b = run_experiment(SPEC, strategy="random", budget=6, rng_seed=2,
                           workers=1)
        assert _sequence(a) != _sequence(b)


class TestBudget:
    @pytest.mark.parametrize("strategy,budget", [
        ("random", 5),
        ("halving", 7),
        ("pareto", 10),
    ])
    def test_budget_is_a_hard_ceiling(self, strategy, budget):
        result = run_experiment(
            SPEC, strategy=strategy, budget=budget, rng_seed=0, workers=1
        )
        assert 0 < result.evaluations <= budget

    def test_search_fields_recorded_on_result_spec(self):
        result = run_experiment(SPEC, strategy="random", budget=4, rng_seed=9,
                                workers=1)
        assert result.spec.strategy == "random"
        assert result.spec.budget == 4
        assert result.spec.rng_seed == 9
        assert result.spec.objective  # resolved objective written back


class TestSpecDrivenSearch:
    def test_spec_with_search_round_trips_and_drives(self):
        spec = SPEC.with_search(strategy="halving", budget=8, rng_seed=3)
        assert spec.search_requested
        reloaded = ExperimentSpec.from_json(spec.to_json())
        assert reloaded == spec
        direct = run_experiment(spec, workers=1)
        keyword = run_experiment(SPEC, strategy="halving", budget=8,
                                 rng_seed=3, workers=1)
        assert isinstance(direct, SearchResult)
        assert _sequence(direct) == _sequence(keyword)

    def test_plain_spec_still_takes_exhaustive_path(self):
        result = run_experiment(SPEC, workers=1)
        assert not isinstance(result, SearchResult)

    def test_raw_scenarios_cannot_search(self):
        with pytest.raises(TypeError, match="axes"):
            run_experiment(SPEC.scenarios(), strategy="random", budget=4)


class TestResume:
    @pytest.mark.parametrize("strategy", ["halving", "pareto"])
    def test_rerun_completes_from_cache(self, tmp_path, strategy):
        cache = SweepCache(tmp_path / "cache")
        cold = run_experiment(SPEC, strategy=strategy, budget=8, rng_seed=4,
                              cache=cache, workers=1)
        warm = run_experiment(SPEC, strategy=strategy, budget=8, rng_seed=4,
                              cache=cache, workers=1)
        assert _sequence(warm) == _sequence(cold)
        # Acceptance asks >= 95%; determinism actually delivers 100%.
        assert warm.cache_hits == warm.evaluations
        assert warm.identical(cold)

    def test_search_caches_by_default(self, tmp_path, monkeypatch):
        # Unlike the exhaustive path (cache is opt-in there), a search
        # with no substrate knobs still memoizes: killing it and
        # re-running the same seed must complete from disk, in a fresh
        # process as much as in this one.  REPRO_SWEEP_CACHE picks the
        # directory.
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "default"))
        cold = run_experiment(SPEC, strategy="halving", budget=8, rng_seed=4)
        warm = run_experiment(SPEC, strategy="halving", budget=8, rng_seed=4)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.evaluations
        assert _sequence(warm) == _sequence(cold)


class TestQuality:
    def test_halving_best_within_5pct_of_exhaustive(self):
        exhaustive = run_experiment(SPEC, strategy="grid", workers=1)
        searched = run_experiment(SPEC, strategy="halving", budget=8,
                                  rng_seed=0, workers=1)
        true_best = exhaustive.best_value()
        found = searched.best_value()
        assert found is not None and true_best is not None
        assert found >= true_best * 0.95
        assert searched.evaluations <= 8

    def test_off_grid_probes_never_win_best(self):
        searched = run_experiment(SPEC, strategy="halving", budget=8,
                                  rng_seed=0, workers=1)
        # Halving's early rungs probe reduced horizons; those outcomes are
        # kept (and cached) but best()/frontier() only see grid points.
        assert any(o.scenario.horizon < 10.0 for o in searched)
        assert searched.best_scenario.horizon == 10.0
        assert all(o.scenario.horizon == 10.0 for o in searched.frontier())


class TestDeprecatedFront:
    def test_importing_repro_exploration_warns(self):
        import importlib
        import sys

        sys.modules.pop("repro.exploration", None)
        with pytest.warns(DeprecationWarning, match="repro.search"):
            importlib.import_module("repro.exploration")

    def test_shim_exports_the_same_objects(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.exploration as old
        import repro.search as new

        assert old.DesignSpaceExplorer is new.DesignSpaceExplorer
        assert old.ApproxLadder is new.ApproxLadder
        assert old.pareto_select is new.pareto_select
        assert old.WorkProfiler is new.WorkProfiler
