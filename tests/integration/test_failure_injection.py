"""Failure injection and adversarial conditions for the runtime."""

import numpy as np
import pytest

from repro.cluster import build_engine, run_colocation
from repro.core import PliantPolicy, PrecisePolicy
from repro.core.runtime import ColocationConfig
from repro.services.loadgen import BurstyLoad, StepLoad


class TestLoadSpikes:
    def test_survives_flash_crowd(self):
        """A burst to 105% of saturation must not wedge the runtime; QoS
        recovers after the burst passes."""
        from repro.services import make_service

        svc = make_service("memcached")
        sat = svc.saturation_qps(8)
        loadgen = BurstyLoad(
            base_qps=0.6 * sat, burst_qps=1.05 * sat, burst_period=20.0, burst_duration=4.0
        )
        config = ColocationConfig(seed=9, horizon=60.0, stop_when_apps_done=False)
        result = run_colocation(
            "memcached", ["snp"], policy=PliantPolicy(seed=9), config=config,
            loadgen=loadgen,
        )
        # After each burst, latency must come back under QoS.
        times = result.epoch_times
        calm = (times % 20.0) > 12.0
        calm_p99 = result.epoch_p99[calm & (times > 25.0)]
        assert np.median(calm_p99) < result.qos * 1.5

    def test_step_load_drop_triggers_relaxation(self):
        """When load halves, Pliant should walk approximation back."""
        from repro.services import make_service

        svc = make_service("mongodb")
        sat = svc.saturation_qps(8)
        loadgen = StepLoad(steps=((0.0, 0.775 * sat), (30.0, 0.40 * sat)))
        config = ColocationConfig(seed=9, horizon=70.0, stop_when_apps_done=False)
        result = run_colocation(
            "mongodb", ["kmeans"], policy=PliantPolicy(seed=9), config=config,
            loadgen=loadgen,
        )
        levels = result.epoch_app_levels["kmeans"]
        late = levels[result.epoch_times > 55.0]
        early = levels[(result.epoch_times > 10.0) & (result.epoch_times < 30.0)]
        assert late.mean() <= early.mean()


class TestOverloadBeyondHelp:
    def test_saturating_load_cannot_be_fixed(self):
        """Above ~100% load no amount of approximation restores QoS
        (paper: beyond 90% load violations persist)."""
        config = ColocationConfig(
            seed=9, load_fraction=1.05, horizon=30.0, stop_when_apps_done=False
        )
        result = run_colocation(
            "memcached", ["snp"], policy=PliantPolicy(seed=9), config=config
        )
        assert not result.qos_met

    def test_engine_survives_zero_load(self):
        from repro.services.loadgen import ConstantLoad

        config = ColocationConfig(seed=9, horizon=5.0, stop_when_apps_done=False)
        result = run_colocation(
            "nginx", ["raytrace"], policy=PliantPolicy(seed=9), config=config,
            loadgen=ConstantLoad(0.0),
        )
        assert result.qos_met  # no load, no violation


class TestDegenerateConfigs:
    def test_single_epoch_interval(self):
        config = ColocationConfig(
            seed=9, decision_interval=0.1, monitor_epoch=0.1, horizon=10.0
        )
        result = run_colocation("mongodb", ["kmeans"], config=config)
        assert len(result.intervals) >= 90

    def test_interval_coarser_than_run(self):
        config = ColocationConfig(seed=9, decision_interval=500.0, horizon=20.0,
                                  stop_when_apps_done=False)
        result = run_colocation("mongodb", ["kmeans"], config=config)
        assert len(result.intervals) == 0  # never reached a boundary

    def test_many_apps_fair_split(self):
        config = ColocationConfig(seed=9, horizon=5.0)
        engine = build_engine(
            "nginx",
            ["kmeans", "semphy", "raytrace", "water_spatial", "bayesian"],
            PrecisePolicy(),
            config=config,
        )
        assert engine.service_cores == 3
        total = engine.service_cores + sum(
            engine.app_sim(n).tenant.cores
            for n in ("kmeans", "semphy", "raytrace", "water_spatial", "bayesian")
        )
        assert total == 16


class TestActuatorEdges:
    def test_cannot_take_last_core(self):
        config = ColocationConfig(seed=9, horizon=4.0)
        engine = build_engine("nginx", ["kmeans"], PrecisePolicy(), config=config)
        sim = engine.app_sim("kmeans")
        for _ in range(7):
            engine.move_core("kmeans", to_service=True)
        assert sim.tenant.cores == 1
        with pytest.raises(ValueError):
            engine.move_core("kmeans", to_service=True)

    def test_invalid_level_rejected(self):
        config = ColocationConfig(seed=9, horizon=4.0)
        engine = build_engine("nginx", ["kmeans"], PliantPolicy(seed=9), config=config)
        with pytest.raises(IndexError):
            engine._actuator.set_level("kmeans", 99)
