"""Fidelity: the simulation's quality accounting against real kernel runs.

The engine reports an app's final inaccuracy as the progress-weighted mix
of the variants it executed.  These tests pin that accounting to ground
truth: running the real kernel at the ladder level Pliant actually used
must produce a quality loss consistent with the simulated report.
"""

import numpy as np
import pytest

from repro.apps import make_app
from repro.cluster import compare_policies, ladder_for
from repro.core import PliantPolicy, PrecisePolicy
from repro.core.runtime import ColocationConfig


@pytest.mark.parametrize("service,app_name", [("memcached", "kmeans"), ("mongodb", "semphy")])
def test_simulated_inaccuracy_consistent_with_kernel(service, app_name):
    config = ColocationConfig(seed=11)
    results = compare_policies(
        service, [app_name], [PrecisePolicy(), PliantPolicy(seed=11)], config=config
    )
    pliant = results["pliant"]
    levels = pliant.epoch_app_levels[app_name]
    simulated = pliant.app_outcome(app_name).inaccuracy_pct

    ladder = ladder_for(app_name)
    level_inaccs = np.asarray(
        [ladder.variant(level).inaccuracy_pct for level in range(ladder.max_level + 1)]
    )
    # The simulated value must lie within the range of inaccuracies of the
    # levels the run actually used (it is a weighted mix of them, plus
    # bounded elision noise).
    used = np.unique(levels)
    lo = level_inaccs[used].min()
    hi = level_inaccs[used].max()
    assert lo - 0.01 <= simulated <= hi + 1.5

    # And the real kernel at the dominant level reproduces its measured
    # ladder inaccuracy (the exploration cache is honest).
    dominant = int(np.bincount(levels).argmax())
    app = make_app(app_name)
    variant = ladder.variant(dominant)
    measured = app.measure(variant.spec, seed=0)
    assert measured.inaccuracy_pct == pytest.approx(
        variant.inaccuracy_pct, abs=0.05
    )


def test_precise_mode_has_exactly_zero_loss():
    config = ColocationConfig(seed=11)
    results = compare_policies(
        "nginx", ["raytrace"], [PrecisePolicy(), PliantPolicy(seed=11)], config=config
    )
    assert results["precise"].app_outcome("raytrace").inaccuracy_pct == 0.0


def test_dynrio_overhead_visible_in_finish_times():
    """Pliant's finish-time advantage must already net out instrumentation
    overhead: pinning an app at level 0 under instrumentation is slower
    than the uninstrumented precise baseline by ~the app's overhead."""
    from repro.cluster import build_engine
    from repro.core.baselines import StaticLevelPolicy

    config = ColocationConfig(seed=11)
    app_name = "water_spatial"
    precise = build_engine(
        "mongodb", [app_name], PrecisePolicy(), config=config
    ).run()
    pinned = build_engine(
        "mongodb", [app_name], StaticLevelPolicy({app_name: 0}), config=config
    ).run()
    t_precise = precise.app_outcome(app_name).finish_time
    t_pinned = pinned.app_outcome(app_name).finish_time
    overhead = make_app(app_name).metadata.dynrio_overhead
    assert t_pinned / t_precise == pytest.approx(1.0 + overhead, abs=0.04)
