"""The paper's headline claims, asserted end-to-end (Section 6.2).

A representative subset of the 24x3 matrix runs here (the full matrix is
the Fig. 5 benchmark); the claims checked:

* precise-mode colocation always violates QoS, within the per-service bands;
* Pliant restores QoS for every colocation;
* output quality loss stays near 2% on average, bounded by ~5.5%;
* approximate apps keep (or improve) their precise-mode execution time,
  with water_spatial the known exception.
"""

import numpy as np
import pytest

from repro.cluster import compare_policies
from repro.core import PliantPolicy, PrecisePolicy
from repro.core.runtime import ColocationConfig

#: Subset spanning suites, services, and contention behaviors.
PAIRS = [
    ("nginx", "canneal"),
    ("nginx", "bayesian"),
    ("nginx", "kmeans"),
    ("nginx", "water_spatial"),
    ("memcached", "canneal"),
    ("memcached", "snp"),
    ("memcached", "plsa"),
    ("memcached", "raytrace"),
    ("mongodb", "canneal"),
    ("mongodb", "snp"),
    ("mongodb", "streamcluster"),
    ("mongodb", "hmmer"),
]


@pytest.fixture(scope="module")
def matrix():
    out = {}
    for service, app in PAIRS:
        config = ColocationConfig(seed=7)
        out[(service, app)] = compare_policies(
            service, [app], [PrecisePolicy(), PliantPolicy(seed=7)], config=config
        )
    return out


class TestPreciseViolations:
    def test_every_pair_violates(self, matrix):
        for key, results in matrix.items():
            assert results["precise"].qos_ratio > 1.0, key

    def test_nginx_band(self, matrix):
        ratios = [r["precise"].qos_ratio for k, r in matrix.items() if k[0] == "nginx"]
        assert max(ratios) > 5.0  # paper: up to 9.8x
        assert min(ratios) > 1.0

    def test_memcached_band(self, matrix):
        ratios = [
            r["precise"].qos_ratio for k, r in matrix.items() if k[0] == "memcached"
        ]
        assert all(1.3 < ratio < 4.5 for ratio in ratios)  # paper: 1.46-3.8x


class TestPliantRestoresQos:
    def test_every_pair_meets(self, matrix):
        for key, results in matrix.items():
            assert results["pliant"].qos_met, (
                key,
                results["pliant"].qos_ratio,
            )

    def test_most_intervals_met(self, matrix):
        fractions = [r["pliant"].qos_met_fraction() for r in matrix.values()]
        assert np.mean(fractions) > 0.75


class TestQualityLoss:
    def test_bounded(self, matrix):
        for (service, app), results in matrix.items():
            inacc = results["pliant"].app_outcome(app).inaccuracy_pct
            assert inacc <= 6.0, (service, app, inacc)

    def test_average_near_paper(self, matrix):
        values = [
            r["pliant"].app_outcome(app).inaccuracy_pct
            for (service, app), r in matrix.items()
        ]
        assert np.mean(values) < 4.0  # paper: 2.1% average

    def test_precise_baseline_exact(self, matrix):
        for (service, app), results in matrix.items():
            assert results["precise"].app_outcome(app).inaccuracy_pct == 0.0


class TestExecutionTime:
    def test_apps_keep_nominal_performance(self, matrix):
        for (service, app), results in matrix.items():
            precise_t = results["precise"].app_outcome(app).finish_time
            pliant_t = results["pliant"].app_outcome(app).finish_time
            assert precise_t is not None and pliant_t is not None
            relative = pliant_t / precise_t
            if app == "water_spatial":
                # The paper's known exception: its variants barely shorten
                # execution, so reclaimed cores cost it real time.
                assert relative < 1.35
            else:
                assert relative < 1.15, (service, app, relative)

    def test_memcached_needs_cores(self, matrix):
        for (service, app), results in matrix.items():
            if service != "memcached":
                continue
            assert results["pliant"].max_cores_reclaimed() >= 1, app

    def test_canneal_needs_more_cores_than_snp_on_memcached(self, matrix):
        canneal = matrix[("memcached", "canneal")]["pliant"].max_cores_reclaimed()
        snp = matrix[("memcached", "snp")]["pliant"].max_cores_reclaimed()
        assert canneal >= snp
