"""Text table / sparkline rendering."""

import numpy as np

from repro.viz.tables import format_table, format_timeline


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["long-name", 22.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_float_formatting(self):
        text = format_table(["x"], [[1234567.0]])
        assert "1,234,567" in text

    def test_nan_rendered_as_dash(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]


class TestFormatTimeline:
    def test_width_respected(self):
        line = format_timeline(np.linspace(0, 1, 500), width=40)
        body = line.split("|")[1]
        assert len(body) == 40

    def test_short_series_uncompressed(self):
        line = format_timeline(np.asarray([0.0, 1.0]), width=40)
        body = line.split("|")[1]
        assert len(body) == 2

    def test_label(self):
        line = format_timeline(np.asarray([1.0]), label="p99")
        assert line.startswith("p99:")

    def test_empty(self):
        assert "(empty)" in format_timeline(np.asarray([]))

    def test_ceiling_clamps(self):
        line = format_timeline(np.asarray([0.5, 10.0]), ceiling=1.0)
        assert line.split("|")[1][-1] == "@"
