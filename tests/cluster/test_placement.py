"""Placement advisor (the paper's scheduler-integration extension)."""

import pytest

from repro.apps import make_app
from repro.cluster import PlacementAdvisor, ladder_for
from repro.services import make_service


@pytest.fixture(scope="module")
def advisor():
    return PlacementAdvisor()


def pair(app_name):
    return make_app(app_name).metadata.profile, ladder_for(app_name)


class TestPredict:
    def test_precise_always_violates(self, advisor):
        for service_name in ("nginx", "memcached", "mongodb"):
            svc = make_service(service_name)
            profile, ladder = pair("kmeans")
            prediction = advisor.predict(svc, profile, ladder)
            assert prediction.precise_ratio > 1.0

    def test_snp_decontends_for_mongodb(self, advisor):
        svc = make_service("mongodb")
        profile, ladder = pair("snp")
        prediction = advisor.predict(svc, profile, ladder)
        assert prediction.best_approx_ratio < prediction.precise_ratio
        assert prediction.predicted_cores <= 1

    def test_canneal_needs_cores_on_memcached(self, advisor):
        svc = make_service("memcached")
        profile, ladder = pair("canneal")
        prediction = advisor.predict(svc, profile, ladder)
        assert prediction.predicted_cores >= 1
        assert not prediction.approx_alone_suffices

    def test_compatibility_orders_sanely(self, advisor):
        """A strong decontender must rank above canneal for memcached."""
        svc = make_service("memcached")
        snp = advisor.predict(svc, *pair("snp"))
        canneal = advisor.predict(svc, *pair("canneal"))
        assert snp.compatibility > canneal.compatibility


class TestAssign:
    def test_all_apps_placed_once(self, advisor):
        services = [make_service(n) for n in ("nginx", "memcached", "mongodb")]
        apps = [pair(n) for n in ("canneal", "snp", "kmeans", "raytrace", "hmmer", "plsa")]
        assignment = advisor.assign(services, apps)
        placed = [app for group in assignment.values() for app in group]
        assert sorted(placed) == sorted(
            ["canneal", "snp", "kmeans", "raytrace", "hmmer", "plsa"]
        )

    def test_balanced(self, advisor):
        services = [make_service(n) for n in ("nginx", "memcached", "mongodb")]
        apps = [pair(n) for n in ("canneal", "snp", "kmeans", "raytrace", "hmmer", "plsa")]
        assignment = advisor.assign(services, apps)
        sizes = [len(group) for group in assignment.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_memcached_avoids_canneal_when_possible(self, advisor):
        """With one slot per node, the scheduler should not hand memcached
        the app that costs it the most cores."""
        services = [make_service(n) for n in ("memcached", "mongodb")]
        apps = [pair("canneal"), pair("snp")]
        assignment = advisor.assign(services, apps)
        assert assignment["memcached"] == ["snp"]

    def test_rejects_empty_fleet(self, advisor):
        with pytest.raises(ValueError):
            advisor.assign([], [pair("kmeans")])
