"""Cluster harness: builders, metrics, sweeps."""

import math

import pytest

from repro.cluster import (
    ViolinStats,
    breakdown_outcomes,
    combination_mixes,
    compare_policies,
    ladder_for,
    run_colocation,
    summarize_pair,
)
from repro.core import PliantPolicy, PrecisePolicy
from repro.core.runtime import ColocationConfig


class TestLadderFor:
    def test_cached(self):
        assert ladder_for("kmeans") is ladder_for("kmeans")

    def test_has_levels(self):
        assert ladder_for("kmeans").max_level >= 1


class TestRunColocation:
    def test_default_policy_is_pliant(self):
        result = run_colocation(
            "mongodb", ["kmeans"], config=ColocationConfig(seed=4)
        )
        assert result.policy_name == "pliant"

    def test_custom_loadgen(self):
        from repro.services.loadgen import ConstantLoad

        result = run_colocation(
            "mongodb",
            ["kmeans"],
            config=ColocationConfig(seed=4, horizon=8.0, stop_when_apps_done=False),
            loadgen=ConstantLoad(100.0),
        )
        assert result.offered_qps > 0


class TestComparePolicies:
    def test_keyed_by_policy_name(self):
        results = compare_policies(
            "mongodb",
            ["kmeans"],
            [PrecisePolicy(), PliantPolicy(seed=4)],
            config=ColocationConfig(seed=4),
        )
        assert set(results) == {"precise", "pliant"}


class TestSummarizePair:
    def test_summary_fields(self):
        config = ColocationConfig(seed=4)
        results = compare_policies(
            "mongodb", ["kmeans"], [PrecisePolicy(), PliantPolicy(seed=4)], config
        )
        summary = summarize_pair(
            results["precise"], results["pliant"], "kmeans", dynrio_overhead=0.034
        )
        assert summary.precise_ratio > summary.pliant_ratio
        assert summary.pliant_meets_qos
        assert not math.isnan(summary.relative_exec_time)
        assert summary.inaccuracy_pct <= 5.5


class TestViolinStats:
    def test_five_numbers(self):
        stats = ViolinStats.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.median == 3.0
        assert stats.mean == 3.0
        assert stats.count == 5
        assert stats.spread() == 4.0

    def test_empty(self):
        stats = ViolinStats.from_values([])
        assert stats.count == 0
        assert math.isnan(stats.mean)


class TestCombinationMixes:
    def test_all_pairs(self):
        mixes = combination_mixes(("a", "b", "c", "d"), 2)
        assert len(mixes) == 6

    def test_sampling_deterministic(self):
        names = tuple(f"app{i}" for i in range(10))
        a = combination_mixes(names, 2, sample=5, seed=1)
        b = combination_mixes(names, 2, sample=5, seed=1)
        assert a == b
        assert len(a) == 5

    def test_sample_larger_than_population(self):
        mixes = combination_mixes(("a", "b"), 2, sample=100)
        assert mixes == [("a", "b")]


class TestBreakdown:
    def test_buckets(self):
        config = ColocationConfig(seed=4)
        result = run_colocation("mongodb", ["snp"], config=config)
        breakdown = breakdown_outcomes([result])
        assert breakdown.total == 1
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
