"""Sweep helpers: load and decision-interval sweeps."""

import pytest

from repro.cluster.sweeps import OutcomeBreakdown, interval_sweep, load_sweep
from repro.core.runtime import ColocationConfig


class TestLoadSweep:
    def test_points_cover_requested_loads(self):
        points = load_sweep(
            "mongodb",
            ("kmeans",),
            load_fractions=(0.4, 0.8),
            base_config=ColocationConfig(seed=4),
        )
        assert [p.value for p in points] == [0.4, 0.8]

    def test_latency_grows_with_load(self):
        points = load_sweep(
            "mongodb",
            ("kmeans",),
            load_fractions=(0.4, 0.95),
            base_config=ColocationConfig(seed=4),
        )
        assert points[0].result.qos_ratio < points[1].result.qos_ratio

    def test_custom_policy_factory(self):
        # Deprecated path: the factory is routed through register_policy
        # so it still runs through the engine (fan-out, seeding, caching).
        from repro.core import PrecisePolicy

        with pytest.warns(DeprecationWarning, match="register_policy"):
            points = load_sweep(
                "mongodb",
                ("kmeans",),
                load_fractions=(0.5,),
                policy_factory=PrecisePolicy,
                base_config=ColocationConfig(seed=4),
            )
        assert points[0].result.policy_name == "precise"

    def test_configured_policy_factory_arguments_respected(self):
        # A factory may close over constructor arguments the declarative
        # registry path cannot reconstruct; they must take effect.
        from repro.core import StaticLevelPolicy

        with pytest.warns(DeprecationWarning):
            points = load_sweep(
                "mongodb",
                ("kmeans",),
                load_fractions=(0.5,),
                policy_factory=lambda: StaticLevelPolicy({"kmeans": 0}),
                base_config=ColocationConfig(seed=4, horizon=30.0),
            )
        assert points[0].result.policy_name == "static-level"

    def test_factory_rejected_on_distributed_backend(self, tmp_path):
        # The transient registration can't reach remote workers; failing
        # at submit time beats a fleet of "unknown policy" job failures.
        from repro.core import PrecisePolicy
        from repro.sweep import DistributedBackend

        with pytest.raises(ValueError, match="distributed"):
            load_sweep(
                "mongodb",
                ("kmeans",),
                load_fractions=(0.5,),
                policy_factory=PrecisePolicy,
                backend=DistributedBackend(tmp_path / "spool"),
            )

    def test_factory_sweep_runs_through_the_engine(self, tmp_path):
        # The deprecated factory path must no longer bypass the engine:
        # results land in the cache like any other sweep.
        from repro.core import PrecisePolicy
        from repro.sweep import SweepCache, SweepEngine

        engine = SweepEngine(workers=1, cache=SweepCache(tmp_path))
        with pytest.warns(DeprecationWarning):
            points = load_sweep(
                "mongodb",
                ("kmeans",),
                load_fractions=(0.5, 0.7),
                policy_factory=PrecisePolicy,
                base_config=ColocationConfig(seed=4, horizon=30.0),
                engine=engine,
            )
        assert len(points) == 2
        assert engine.cache.misses == 2
        with pytest.warns(DeprecationWarning):
            load_sweep(
                "mongodb",
                ("kmeans",),
                load_fractions=(0.5, 0.7),
                policy_factory=PrecisePolicy,
                base_config=ColocationConfig(seed=4, horizon=30.0),
                engine=engine,
            )
        assert engine.cache.hits == 2

    def test_engine_with_cache_memoizes_points(self, tmp_path):
        from repro.sweep import SweepCache, SweepEngine

        engine = SweepEngine(workers=1, cache=SweepCache(tmp_path))
        kwargs = dict(
            load_fractions=(0.5, 0.7),
            base_config=ColocationConfig(seed=4, horizon=30.0),
            engine=engine,
        )
        load_sweep("mongodb", ("kmeans",), **kwargs)
        assert engine.cache.misses == 2
        load_sweep("mongodb", ("kmeans",), **kwargs)
        assert engine.cache.hits == 2


class TestIntervalSweep:
    def test_points_cover_intervals(self):
        points = interval_sweep(
            "mongodb",
            ("kmeans",),
            intervals=(0.5, 2.0),
            base_config=ColocationConfig(seed=4),
        )
        assert [p.value for p in points] == [0.5, 2.0]

    def test_finer_interval_more_decisions(self):
        points = interval_sweep(
            "mongodb",
            ("kmeans",),
            intervals=(0.5, 2.0),
            base_config=ColocationConfig(seed=4),
        )
        fine, coarse = points
        assert len(fine.result.intervals) > len(coarse.result.intervals)


class TestOutcomeBreakdown:
    def test_totals(self):
        breakdown = OutcomeBreakdown(approx_only=2, one_core=3, two_cores=1)
        assert breakdown.total == 6
        fractions = breakdown.fractions()
        assert fractions["approx_only"] == pytest.approx(2 / 6)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_safe(self):
        assert OutcomeBreakdown().fractions()["approx_only"] == 0.0
