# Developer entry points.  The tier-1 command is the contract: it must stay
# green on every commit (see ROADMAP.md).

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-check bench-figs sweep-smoke sweep-smoke-tcp search-smoke lint lint-fixtures

## Tier-1: fast unit/integration suite (the gate for every PR).
test:
	$(PY) -m pytest -x -q

## Sweep-engine benchmark: measures parallel/cached/vectorized speedups and
## the distributed-vs-serial gap; appends trajectory entries to
## BENCH_sweep.json.
bench:
	$(PY) -m pytest benchmarks/test_sweep_engine.py benchmarks/test_adaptive_search.py -m benchmark -q

## Distributed-backend smoke: >= 32-scenario grid through a two-worker local
## fleet with a mid-sweep worker kill; asserts bit-identity with the serial
## pass and a >= 95% warm cache rerun.  Filesystem spool transport.
sweep-smoke:
	$(PY) -m pytest benchmarks/test_distributed_sweep.py -m benchmark -q -k filesystem

## Same smoke over the asyncio TCP broker (REPRO_SWEEP_SPOOL=tcp://host:port).
sweep-smoke-tcp:
	$(PY) -m pytest benchmarks/test_distributed_sweep.py -m benchmark -q -k tcp

## Adaptive-search smoke: budgeted halving over a 256-point space must
## evaluate <= 25% of it and land within 5% of the exhaustive optimum;
## records adaptive_vs_exhaustive in BENCH_sweep.json.
search-smoke:
	$(PY) -m pytest benchmarks/test_adaptive_search.py -m benchmark -q

## Full figure-reproduction drivers (Figs. 1-10, ~minutes).
bench-figs:
	$(PY) -m pytest benchmarks -m benchmark -q

## Trajectory hygiene: BENCH_sweep.json parses and is monotone-appended.
bench-check:
	$(PY) scripts/bench_check.py

## Import/syntax floor plus repro-lint: byte-compile everything, then
## enforce the determinism/lease-clock/distributed-safety invariants
## (strict: stale baseline entries fail too).
lint:
	$(PY) -m compileall -q src tests benchmarks examples scripts
	$(PY) -m repro.analysis --strict

## Sanity-check the lint fixture corpus: every bad fixture must still
## fail its zone's rules, every good fixture must stay clean.  Guards
## against a rule silently going blind.  Single files exercise the
## per-file rules under a forced zone; the directories under
## fixtures/project/ are miniature projects exercising the cross-file
## rules (taint chains, lock order, schema drift).
lint-fixtures:
	@for f in tests/analysis/fixtures/*/bad_*.py; do \
		zone=$$(basename $$(dirname $$f)); \
		if $(PY) -m repro.analysis --no-baseline --zone $$zone $$f >/dev/null; then \
			echo "lint-fixtures: $$f unexpectedly passed"; exit 1; \
		fi; \
	done
	@for f in tests/analysis/fixtures/*/good_*.py; do \
		zone=$$(basename $$(dirname $$f)); \
		if ! $(PY) -m repro.analysis --no-baseline --zone $$zone $$f >/dev/null; then \
			echo "lint-fixtures: $$f unexpectedly failed"; exit 1; \
		fi; \
	done
	@for d in tests/analysis/fixtures/project/bad_*/; do \
		if $(PY) -m repro.analysis --no-baseline --no-cache --root $$d $$d >/dev/null; then \
			echo "lint-fixtures: $$d unexpectedly passed"; exit 1; \
		fi; \
	done
	@for d in tests/analysis/fixtures/project/good_*/; do \
		if ! $(PY) -m repro.analysis --no-baseline --no-cache --root $$d $$d >/dev/null; then \
			echo "lint-fixtures: $$d unexpectedly failed"; exit 1; \
		fi; \
	done
	@echo "lint-fixtures: ok"
