# Developer entry points.  The tier-1 command is the contract: it must stay
# green on every commit (see ROADMAP.md).

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-check bench-figs sweep-smoke sweep-smoke-tcp search-smoke lint

## Tier-1: fast unit/integration suite (the gate for every PR).
test:
	$(PY) -m pytest -x -q

## Sweep-engine benchmark: measures parallel/cached/vectorized speedups and
## the distributed-vs-serial gap; appends trajectory entries to
## BENCH_sweep.json.
bench:
	$(PY) -m pytest benchmarks/test_sweep_engine.py benchmarks/test_adaptive_search.py -m benchmark -q

## Distributed-backend smoke: >= 32-scenario grid through a two-worker local
## fleet with a mid-sweep worker kill; asserts bit-identity with the serial
## pass and a >= 95% warm cache rerun.  Filesystem spool transport.
sweep-smoke:
	$(PY) -m pytest benchmarks/test_distributed_sweep.py -m benchmark -q -k filesystem

## Same smoke over the asyncio TCP broker (REPRO_SWEEP_SPOOL=tcp://host:port).
sweep-smoke-tcp:
	$(PY) -m pytest benchmarks/test_distributed_sweep.py -m benchmark -q -k tcp

## Adaptive-search smoke: budgeted halving over a 256-point space must
## evaluate <= 25% of it and land within 5% of the exhaustive optimum;
## records adaptive_vs_exhaustive in BENCH_sweep.json.
search-smoke:
	$(PY) -m pytest benchmarks/test_adaptive_search.py -m benchmark -q

## Full figure-reproduction drivers (Figs. 1-10, ~minutes).
bench-figs:
	$(PY) -m pytest benchmarks -m benchmark -q

## Trajectory hygiene: BENCH_sweep.json parses and is monotone-appended.
bench-check:
	$(PY) scripts/bench_check.py

## Import/syntax floor: byte-compile everything (no linter is vendored).
lint:
	$(PY) -m compileall -q src tests benchmarks examples
