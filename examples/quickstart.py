"""Quickstart: colocate memcached with canneal, precise vs Pliant.

Runs the paper's flagship scenario end to end:

1. explore canneal's approximation design space (measured on the real
   kernel, cached on disk),
2. run the colocation under the static-fair-share Precise baseline,
3. run it again under Pliant,
4. print the timelines and the outcome comparison,
5. execute the real canneal kernel at the ladder level Pliant used most,
   to show the actual output-quality cost.

Usage:  python examples/quickstart.py
"""

from repro.apps import make_app
from repro.cluster import compare_policies, ladder_for
from repro.core import PliantPolicy, PrecisePolicy
from repro.core.runtime import ColocationConfig
from repro.viz import format_table, format_timeline


def main() -> None:
    service, app_name = "memcached", "canneal"

    print(f"== exploring {app_name}'s approximation design space ==")
    ladder = ladder_for(app_name)
    for level in range(ladder.max_level + 1):
        variant = ladder.variant(level)
        tag = "precise" if level == 0 else f"approx v{level}"
        print(
            f"  level {level} ({tag:10s}): inaccuracy {variant.inaccuracy_pct:4.1f}%  "
            f"time {variant.time_factor:.2f}x  contention {variant.traffic_rate_factor:.2f}x"
        )

    print(f"\n== running {service} + {app_name} at 77.5% load ==")
    config = ColocationConfig(seed=1)
    results = compare_policies(
        service, [app_name], [PrecisePolicy(), PliantPolicy(seed=1)], config=config
    )

    rows = []
    for name, result in results.items():
        outcome = result.app_outcome(app_name)
        rows.append(
            [
                name,
                f"{result.aggregate_p99 * 1e6:.0f}us",
                f"{result.qos * 1e6:.0f}us",
                "yes" if result.qos_met else "NO",
                f"{outcome.finish_time:.1f}s" if outcome.finish_time else "-",
                f"{outcome.inaccuracy_pct:.2f}%",
                result.max_cores_reclaimed(),
            ]
        )
    print(
        format_table(
            ["runtime", "p99", "QoS", "met", "app finish", "inaccuracy", "cores"],
            rows,
        )
    )

    pliant = results["pliant"]
    print("\n== Pliant timeline ==")
    print(format_timeline(pliant.epoch_p99 / pliant.qos, label="p99/QoS  ", ceiling=3))
    print(
        format_timeline(
            pliant.epoch_app_levels[app_name],
            label="level    ",
            ceiling=max(ladder.max_level, 1),
        )
    )
    reclaimed = pliant.epoch_app_cores[app_name][0] - pliant.epoch_app_cores[app_name]
    print(format_timeline(reclaimed, label="reclaimed", ceiling=4))

    # Execute the real kernel at the most-used approximate level.
    levels = pliant.epoch_app_levels[app_name]
    dominant = int(max(set(levels.tolist()), key=levels.tolist().count))
    print(f"\n== executing the real {app_name} kernel at level {dominant} ==")
    app = make_app(app_name)
    precise_run = app.precise_run(seed=0)
    variant_run = app.run(ladder.variant(dominant).spec, seed=0)
    loss = app.quality_loss(precise_run.output, variant_run.output)
    print(f"precise wire length: {precise_run.output:,.0f}")
    print(f"approx  wire length: {variant_run.output:,.0f}  (+{loss:.2f}%)")
    print(
        f"work executed: {variant_run.counters.work / precise_run.counters.work:.2f}x "
        "of precise"
    )


if __name__ == "__main__":
    main()
