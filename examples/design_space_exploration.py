"""Design-space exploration walkthrough (paper Section 3).

Explores one application's approximation space in full: enumerates the knob
grid, measures every variant on the real kernel, prints the scatter, the
pareto selection, and the gprof-style profiler's view of where the work
lives.

Usage:  python examples/design_space_exploration.py [app_name]
"""

import sys

from repro.apps import make_app
from repro.exploration import DesignSpaceExplorer, WorkProfiler
from repro.viz import format_table


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "bayesian"
    app = make_app(app_name)

    print(f"== {app_name} ({app.metadata.suite}) ==")
    print(f"approximable sites (ACCEPT-style hints):")
    for name, knob in app.knobs().items():
        print(f"  {name}: precise={knob.precise_value!r} candidates={knob.candidates!r}")

    print("\n== gprof-style work attribution ==")
    for site in WorkProfiler(app).profile():
        bar = "#" * int(40 * site.work_share)
        print(f"  {site.knob_name:22s} {100 * site.work_share:5.1f}% |{bar}")

    print("\n== measuring every variant (this runs the real kernel) ==")
    explorer = DesignSpaceExplorer(app, seed=0)
    result = explorer.explore()
    rows = [
        [
            "*" if variant in result.selected else "",
            f"{variant.inaccuracy_pct:.2f}",
            f"{variant.time_factor:.2f}",
            f"{variant.traffic_rate_factor:.2f}",
            f"{variant.footprint_factor:.2f}",
            ", ".join(f"{k}={v}" for k, v in variant.spec.items()),
        ]
        for variant in sorted(result.all_variants, key=lambda v: v.inaccuracy_pct)
    ]
    print(
        format_table(
            ["sel", "inacc %", "time x", "contention x", "footprint x", "knobs"],
            rows,
        )
    )
    print(
        f"\n{len(result.all_variants)} variants examined, "
        f"{len(result.selected)} selected near the pareto frontier "
        f"(<= 5% inaccuracy)."
    )
    print("\n== the runtime ladder ==")
    for level in range(result.ladder.max_level + 1):
        v = result.ladder.variant(level)
        print(
            f"  level {level}: inaccuracy {v.inaccuracy_pct:4.1f}%  "
            f"time {v.time_factor:.2f}x  contention {v.traffic_rate_factor:.2f}x"
        )
    print(
        "\nMeasurements are cached content-addressed (app, seed, knob grid,"
        "\nquality threshold); corrupted entries are dropped and remeasured."
        "\nRe-run this example to see the cache hit."
    )


if __name__ == "__main__":
    main()
