"""Design-space exploration, two layers deep.

Layer 1 (paper Section 3): enumerate one application's approximation
knobs, profile where the work lives, and build its runtime ladder.

Layer 2 (the part that scales): treat the *colocation* design space —
load level x slack threshold x decision interval x seed — as a search
problem.  Instead of exhaustively sweeping all points, a budgeted
Pareto-guided strategy spends a fraction of the evaluations walking the
QoS/reclamation frontier: ``run_experiment(spec, strategy="pareto",
budget=N)``.

Usage:  python examples/design_space_exploration.py [app_name]
"""

import sys

from repro.apps import make_app
from repro.experiment import ExperimentSpec, run_experiment
from repro.search import WorkProfiler
from repro.viz import format_table


def explore_knobs(app_name: str) -> None:
    app = make_app(app_name)
    print(f"== {app_name} ({app.metadata.suite}) ==")
    print("approximable sites (ACCEPT-style hints):")
    for name, knob in app.knobs().items():
        print(f"  {name}: precise={knob.precise_value!r} candidates={knob.candidates!r}")

    print("\n== gprof-style work attribution ==")
    for site in WorkProfiler(app).profile():
        bar = "#" * int(40 * site.work_share)
        print(f"  {site.knob_name:22s} {100 * site.work_share:5.1f}% |{bar}")


def search_colocation_space(app_name: str) -> None:
    spec = ExperimentSpec(
        name="colocation-search",
        description="budgeted Pareto walk over the colocation design space",
        base={
            "service": "memcached",
            "apps": app_name,
            "horizon": 20.0,
            "monitor_epoch": 0.5,
        },
        axes={
            "load_fraction": [0.5, 0.6, 0.7, 0.8],
            "slack_threshold": [0.02, 0.05, 0.08, 0.12],
            "decision_interval": [0.5, 1.0],
            "seed": [0, 1],
        },
    )
    budget = 24
    print(f"\n== searching a {len(spec)}-point colocation space, budget {budget} ==")
    result = run_experiment(spec, strategy="pareto", budget=budget, rng_seed=0)

    print(
        f"evaluated {result.evaluations}/{result.space_size} points "
        f"({100 * result.fraction_evaluated:.0f}%) in {len(result.rounds)} "
        f"rounds ({result.cache_hits} from cache)"
    )
    for record in result.rounds:
        print(
            f"  round {record.round}: {record.evaluated} evaluated, "
            f"best so far {record.best_label or '-'}"
        )

    print("\n== the QoS / reclamation frontier ==")
    rows = []
    for outcome in result.frontier():
        values = [obj.value(outcome.result) for obj in result.objectives]
        rows.append(
            [outcome.scenario.label()]
            + [f"{v:.3f}" if v is not None else "-" for v in values]
        )
    print(
        format_table(
            ["scenario"] + [obj.spec for obj in result.objectives], rows
        )
    )

    best = result.best()
    print(
        f"\nbest point: {best.scenario.label()} "
        f"({result.objectives[0].spec} = {result.best_value():.3f})"
    )
    print(
        "\nEvery evaluated point is in the content-addressed sweep cache:"
        "\nkill and re-run this search (same seed) and it replays the same"
        "\nproposal sequence, hitting the cache instead of re-simulating."
    )


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "bayesian"
    explore_knobs(app_name)
    search_colocation_space(app_name)


if __name__ == "__main__":
    main()
