"""Bringing your own approximate application.

Implements a small Monte-Carlo option pricer as an ApproximableApp —
the three methods a user writes — explores its design space, and runs it
under Pliant next to NGINX.  This is the workflow a cloud tenant would
follow to make a new batch job Pliant-manageable.

Usage:  python examples/custom_app.py
"""

from typing import Any, Mapping

import numpy as np

from repro import units
from repro.apps.base import AppMetadata, ApproximableApp, KernelCounters
from repro.apps.knobs import Knob, LoopPerforation, PrecisionReduction
from repro.apps.quality import relative_error_pct
from repro.cluster import compare_policies
from repro.core import PliantPolicy, PrecisePolicy
from repro.core.runtime import ColocationConfig, ColocationEngine
from repro.search import DesignSpaceExplorer
from repro.server.resources import ResourceProfile
from repro.services import make_service
from repro.viz import format_table

_N_PATHS = 20_000
_N_STEPS = 64


class MonteCarloPricer(ApproximableApp):
    """Asian-option pricing by Monte-Carlo path simulation.

    Perforating paths is classic approximate computing: the price estimate
    degrades as 1/sqrt(paths), so large speedups cost little accuracy.
    """

    metadata = AppMetadata(
        name="mc_pricer",
        suite="custom",
        nominal_exec_time=25.0,
        parallel_fraction=0.95,
        dynrio_overhead=0.025,
        profile=ResourceProfile(
            llc_footprint_bytes=units.mb(38),
            llc_intensity=0.7,
            membw_per_core=units.gbytes_per_sec(6.0),
        ),
    )

    def knobs(self) -> dict[str, Knob]:
        return {
            "perforate_paths": LoopPerforation(
                "perforate_paths", (0.6, 0.35, 0.2, 0.1)
            ),
            "perforate_steps": LoopPerforation("perforate_steps", (0.5, 0.25)),
            "precision": PrecisionReduction("precision", ("float32",)),
        }

    def run_kernel(
        self,
        settings: Mapping[str, Any],
        counters: KernelCounters,
        rng: np.random.Generator,
    ) -> float:
        paths = max(64, int(_N_PATHS * settings["perforate_paths"]))
        steps = max(8, int(_N_STEPS * settings["perforate_steps"]))
        dtype = PrecisionReduction.dtype(settings["precision"])
        bytes_per = PrecisionReduction.bytes_per_element(settings["precision"])

        dt = 1.0 / steps
        drift = (0.03 - 0.5 * 0.2**2) * dt
        vol = 0.2 * np.sqrt(dt)
        shocks = rng.standard_normal((paths, steps)).astype(dtype)
        log_paths = np.cumsum(drift + vol * shocks.astype(np.float64), axis=1)
        prices = 100.0 * np.exp(log_paths)
        counters.add(work=float(paths * steps), traffic=float(paths * steps) * bytes_per)
        counters.note_footprint(paths * steps * bytes_per)
        payoff = np.maximum(prices.mean(axis=1) - 100.0, 0.0)
        return float(payoff.mean())

    def quality_loss(self, precise_output: float, approx_output: float) -> float:
        return relative_error_pct(
            np.asarray([approx_output]), np.asarray([precise_output])
        )


def main() -> None:
    app = MonteCarloPricer()

    print("== exploring the custom app's design space ==")
    result = DesignSpaceExplorer(app, seed=0).explore()
    for level in range(result.ladder.max_level + 1):
        v = result.ladder.variant(level)
        print(
            f"  level {level}: inaccuracy {v.inaccuracy_pct:5.2f}%  "
            f"time {v.time_factor:.2f}x  contention {v.traffic_rate_factor:.2f}x"
        )

    print("\n== colocating with NGINX ==")
    config = ColocationConfig(seed=6)
    rows = []
    for policy in (PrecisePolicy(), PliantPolicy(seed=6)):
        engine = ColocationEngine(
            service=make_service("nginx"),
            apps=[(MonteCarloPricer(), result.ladder)],
            policy=policy,
            config=config,
        )
        run = engine.run()
        outcome = run.app_outcome("mc_pricer")
        rows.append(
            [
                policy.name,
                f"{run.aggregate_p99 * 1e3:.1f}ms",
                "yes" if run.qos_met else "NO",
                f"{outcome.inaccuracy_pct:.2f}%",
                f"{outcome.finish_time:.1f}s" if outcome.finish_time else "-",
                run.max_cores_reclaimed(),
            ]
        )
    print(
        format_table(
            ["runtime", "p99", "QoS met", "price error", "finish", "cores"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
