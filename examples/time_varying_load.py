"""Time-varying load shapes and slack sensitivity — the open-axis sweep.

The legacy grid could only sweep the six axes it hard-coded; the
declarative :class:`ExperimentSpec` sweeps *any* scenario field.  This
example drives the flagship memcached+canneal colocation under three
load shapes (constant, a step surge, a diurnal swing) at two slack
thresholds, all in one spec, and shows how Pliant's approximation depth
tracks the offered load.

Usage:  python examples/time_varying_load.py [service] [app]
"""

import sys

import numpy as np

from repro.experiment import ExperimentSpec, run_experiment
from repro.sweep import SweepCache, SweepEngine
from repro.viz import format_table, format_timeline

#: (label, shape, params) — QPS params are fractions of saturation.
SHAPES = (
    ("constant", "constant", ()),
    ("step surge", "step", (("steps", ((0.0, 0.6), (150.0, 0.95))),)),
    ("diurnal", "diurnal", (("low", 0.5), ("high", 0.95), ("period", 200.0))),
)


def main() -> None:
    service = sys.argv[1] if len(sys.argv) > 1 else "memcached"
    app = sys.argv[2] if len(sys.argv) > 2 else "canneal"

    spec = ExperimentSpec(
        name=f"time-varying-load/{service}/{app}",
        description="load-shape x slack-threshold sensitivity",
        base={"service": service, "apps": app, "seed": 11},
        axes={
            "loadgen_shape": tuple(shape for _, shape, _ in SHAPES),
            "loadgen_params": tuple(params for _, _, params in SHAPES),
            "slack_threshold": (0.05, 0.10),
        },
    )
    # loadgen_shape x loadgen_params would be a 3x3 cross product; keep
    # only the matched (shape, params) diagonal.
    matched = {(shape, params) for _, shape, params in SHAPES}
    scenarios = [
        s
        for s in spec.scenarios()
        if (s.loadgen_shape, s.loadgen_params) in matched
    ]
    engine = SweepEngine(cache=SweepCache())
    print(f"== {len(scenarios)} scenarios ({service} + {app}) ==")
    results = run_experiment(scenarios, engine=engine)

    rows = []
    for outcome in results:
        scenario = outcome.scenario
        result = outcome.result
        label = next(
            l for l, shape, params in SHAPES
            if (shape, params) == (scenario.loadgen_shape, scenario.loadgen_params)
        )
        mean_level = float(np.mean(result.epoch_app_levels[app]))
        rows.append(
            [
                label,
                f"{scenario.slack_threshold:.2f}",
                f"{result.qos_ratio:.2f}",
                "yes" if result.qos_met else "NO",
                f"{mean_level:.1f}",
                result.max_cores_reclaimed(),
                f"{result.app_outcome(app).inaccuracy_pct:.2f}%",
                "cache" if outcome.from_cache else f"{outcome.duration:.2f}s",
            ]
        )
    print(
        format_table(
            [
                "load shape",
                "slack",
                "p99/QoS",
                "met",
                "mean level",
                "cores taken",
                "inaccuracy",
                "run",
            ],
            rows,
        )
    )

    diurnal = results.filter(loadgen_shape="diurnal", slack_threshold=0.10)
    if len(diurnal):
        result = diurnal[0].result
        print("\n== diurnal trace (p99/QoS and approximation level) ==")
        print(format_timeline(result.epoch_p99 / result.qos, label="p99/QoS", ceiling=3.0))
        print(
            format_timeline(
                result.epoch_app_levels[app],
                label="level  ",
                ceiling=max(result.epoch_app_levels[app].max(), 1),
            )
        )
    print(f"\n(results cached under {engine.cache.root}; rerun is free)")


if __name__ == "__main__":
    main()
