"""Load-sensitivity study (paper Fig. 8, single pair).

Sweeps the offered load of an interactive service from 40% to 100% of
saturation while colocated with one approximate app under Pliant, and
prints how tail latency, approximation degree, core reclamation and app
quality respond.

The sweep runs through the parallel sweep engine with the on-disk result
cache, so re-running the example (or sweeping the same pair from a
benchmark) is nearly free.

Usage:  python examples/load_sensitivity.py [service] [app]
"""

import sys

import numpy as np

from repro.experiment import ExperimentSpec, run_experiment
from repro.services import make_service
from repro.sweep import SweepCache, SweepEngine
from repro.viz import format_table


def main() -> None:
    service = sys.argv[1] if len(sys.argv) > 1 else "memcached"
    app = sys.argv[2] if len(sys.argv) > 2 else "kmeans"
    saturation = make_service(service).saturation_qps(8)

    engine = SweepEngine(cache=SweepCache())
    spec = ExperimentSpec(
        name=f"load-sensitivity/{service}/{app}",
        base={"service": service, "apps": app, "seed": 5},
        axes={"load_fraction": (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)},
    )
    results = run_experiment(spec, engine=engine)

    rows = []
    for outcome in results:
        result = outcome.result
        load = outcome.scenario.load_fraction
        app_outcome = result.app_outcome(app)
        mean_level = float(np.mean(result.epoch_app_levels[app]))
        rows.append(
            [
                f"{int(100 * load)}%",
                f"{load * saturation:,.0f}",
                f"{result.qos_ratio:.2f}",
                "yes" if result.qos_met else "NO",
                f"{mean_level:.1f}",
                result.max_cores_reclaimed(),
                f"{app_outcome.inaccuracy_pct:.2f}%",
                f"{app_outcome.finish_time:.1f}s" if app_outcome.finish_time else "-",
                "cache" if outcome.from_cache else f"{outcome.duration:.2f}s",
            ]
        )

    print(f"== {service} + {app}: load sweep under Pliant ==")
    print(
        format_table(
            [
                "load",
                "QPS",
                "p99/QoS",
                "met",
                "mean approx level",
                "cores taken",
                "inaccuracy",
                "finish",
                "run",
            ],
            rows,
        )
    )
    print(
        "\nReading: below ~60% load the app runs (nearly) precise; "
        "approximation ramps through the mid-range; near saturation "
        "cores move too, and beyond it no lever suffices."
    )
    print(f"(results cached under {engine.cache.root})")


if __name__ == "__main__":
    main()
