"""Multi-tenant colocation: one interactive service + three approximate
applications, managed round-robin (paper Section 4.4).

Shows how Pliant distributes the approximation/core burden across multiple
co-scheduled batch jobs, and compares the round-robin arbiter with the
Section 6.5 impact-aware extension.

Usage:  python examples/multi_tenant_colocation.py [service]
"""

import sys

from repro.cluster import build_engine, ladder_for
from repro.core import ImpactAwareArbiter, PliantPolicy
from repro.core.runtime import ColocationConfig
from repro.viz import format_table, format_timeline

MIX = ("canneal", "bayesian", "snp")


def run(service: str, arbiter=None, label: str = "round-robin"):
    policy = PliantPolicy(seed=4, arbiter=arbiter)
    engine = build_engine(service, list(MIX), policy, config=ColocationConfig(seed=4))
    result = engine.run()

    print(f"\n== {service} + {'+'.join(MIX)}  ({label} arbiter) ==")
    print(format_timeline(result.epoch_p99 / result.qos, label="p99/QoS", ceiling=3))
    rows = []
    for app in MIX:
        outcome = result.app_outcome(app)
        ladder = ladder_for(app)
        rows.append(
            [
                app,
                ladder.max_level,
                f"{outcome.inaccuracy_pct:.2f}%",
                outcome.max_reclaimed,
                f"{outcome.finish_time:.1f}s" if outcome.finish_time else "-",
                outcome.switches,
            ]
        )
    print(
        format_table(
            ["app", "ladder levels", "inaccuracy", "max cores yielded", "finish", "switches"],
            rows,
        )
    )
    print(
        f"QoS met: {result.qos_met} "
        f"({result.qos_met_fraction() * 100:.0f}% of intervals), "
        f"fair share was 4 cores each"
    )
    return result


def main() -> None:
    service = sys.argv[1] if len(sys.argv) > 1 else "nginx"
    round_robin = run(service)
    impact = run(service, arbiter=ImpactAwareArbiter(), label="impact-aware")

    print("\n== arbiter comparison ==")
    for label, result in (("round-robin", round_robin), ("impact-aware", impact)):
        worst = max(a.inaccuracy_pct for a in result.apps)
        total_cores = sum(a.max_reclaimed for a in result.apps)
        print(
            f"{label:12s}: worst inaccuracy {worst:.2f}%, "
            f"total cores yielded {total_cores}, QoS met {result.qos_met}"
        )


if __name__ == "__main__":
    main()
