"""Parallel sweep engine walkthrough.

Builds a multi-axis scenario grid (services x apps x loads x policies),
fans it out across every core with the memoizing sweep engine, and prints
the per-scenario QoS outcome plus cache/parallelism provenance.  Also
shows the vectorized request-level load sweep: one batched
Kiefer-Wolfowitz pass over a whole grid of arrival rates.

Usage:  python examples/parallel_sweep.py [workers]
"""

import sys

import numpy as np

from repro.sim.analytic import mmc_tail_latency_batch
from repro.sim.distributions import Exponential
from repro.sim.queueing import batch_load_sweep
from repro.sweep import Scenario, SweepCache, SweepEngine, SweepGrid
from repro.viz import format_table


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else None

    grid = SweepGrid(
        services=("memcached", "mongodb"),
        app_mixes=(("kmeans",), ("canneal",)),
        policies=("pliant", "precise"),
        load_fractions=(0.6, 0.9),
        seeds=(7,),
        base=Scenario(service="memcached", apps=("kmeans",), seed=7),
    )
    engine = SweepEngine(workers=workers, cache=SweepCache())
    print(f"== sweeping {len(grid)} colocation scenarios ==")
    outcomes = engine.run(grid)

    rows = [
        [
            o.scenario.service,
            "+".join(o.scenario.apps),
            o.scenario.policy,
            f"{int(100 * o.scenario.load_fraction)}%",
            f"{o.result.qos_ratio:.2f}",
            "yes" if o.result.qos_met else "NO",
            "cache" if o.from_cache else f"{o.duration:.2f}s",
        ]
        for o in outcomes
    ]
    print(
        format_table(
            ["service", "apps", "policy", "load", "p99/QoS", "met", "run"], rows
        )
    )
    print(f"(results cached under {engine.cache.root}; rerun to see hits)\n")

    print("== vectorized request-level load sweep (G/G/2, one batch pass) ==")
    rates = np.linspace(30.0, 90.0, 7)
    metrics = batch_load_sweep(2, Exponential(0.02), rates, 40_000, seed=1)
    analytic = mmc_tail_latency_batch(rates, np.full_like(rates, 0.02), 2)
    rows = [
        [f"{rate:.0f}", f"{m.p99 * 1e3:.1f}", f"{a * 1e3:.1f}"]
        for rate, m, a in zip(rates, metrics, analytic)
    ]
    print(format_table(["QPS", "sim p99 (ms)", "analytic p99 (ms)"], rows))


if __name__ == "__main__":
    main()
