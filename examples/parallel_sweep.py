"""Declarative experiment walkthrough.

Declares a multi-axis experiment as an :class:`ExperimentSpec` (services
x apps x loads x policies), fans it out across every core through
``run_experiment`` with the memoizing sweep engine, and queries the
returned :class:`ResultSet` for the per-scenario QoS outcome plus
cache/parallelism provenance.  Also shows the vectorized request-level
load sweep: one batched Kiefer-Wolfowitz pass over a whole grid of
arrival rates.

Usage:  python examples/parallel_sweep.py [workers]
"""

import sys

import numpy as np

from repro.experiment import ExperimentSpec, run_experiment
from repro.sim.analytic import mmc_tail_latency_batch
from repro.sim.distributions import Exponential
from repro.sim.queueing import batch_load_sweep
from repro.sweep import SweepCache, SweepEngine
from repro.viz import format_table


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else None

    spec = ExperimentSpec(
        name="parallel-sweep-demo",
        base={"seed": 7},
        axes={
            "service": ("memcached", "mongodb"),
            "apps": ("kmeans", "canneal"),
            "policy": ("pliant", "precise"),
            "load_fraction": (0.6, 0.9),
        },
    )
    engine = SweepEngine(workers=workers, cache=SweepCache())
    print(f"== sweeping {len(spec)} colocation scenarios ==")
    print(f"(the same spec file drives the CLI: spec.save('exp.json') then")
    print(f" python -m repro.sweep submit --spec exp.json --spool ... --wait)")
    results = run_experiment(spec, engine=engine)

    rows = [
        [
            o.scenario.service,
            "+".join(o.scenario.apps),
            o.scenario.policy,
            f"{int(100 * o.scenario.load_fraction)}%",
            f"{o.result.qos_ratio:.2f}",
            "yes" if o.result.qos_met else "NO",
            "cache" if o.from_cache else f"{o.duration:.2f}s",
        ]
        for o in results
    ]
    print(
        format_table(
            ["service", "apps", "policy", "load", "p99/QoS", "met", "run"], rows
        )
    )
    met = results.aggregate("qos_met", by="policy")
    print(
        f"QoS met (fraction of scenarios): "
        + ", ".join(f"{k}={v:.2f}" for k, v in met.items())
    )
    print(f"(results cached under {engine.cache.root}; rerun to see hits)\n")

    print("== vectorized request-level load sweep (G/G/2, one batch pass) ==")
    rates = np.linspace(30.0, 90.0, 7)
    metrics = batch_load_sweep(2, Exponential(0.02), rates, 40_000, seed=1)
    analytic = mmc_tail_latency_batch(rates, np.full_like(rates, 0.02), 2)
    rows = [
        [f"{rate:.0f}", f"{m.p99 * 1e3:.1f}", f"{a * 1e3:.1f}"]
        for rate, m, a in zip(rates, metrics, analytic)
    ]
    print(format_table(["QPS", "sim p99 (ms)", "analytic p99 (ms)"], rows))


if __name__ == "__main__":
    main()
