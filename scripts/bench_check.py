#!/usr/bin/env python3
"""Validate the BENCH_sweep.json trajectory file.

The trajectory is append-only evidence of measured speedups across PRs;
a malformed or rewound file means a benchmark run (or a merge) corrupted
it.  Checks:

* the file parses as JSON with the expected envelope,
* every run entry has a label and an ISO-8601 UTC timestamp,
* timestamps are monotone non-decreasing (append-only, never rewritten),
* every run records the host's cpu_count as a positive integer (the
  denominator every speedup claim is judged against),
* the distributed gate: any ``distributed_vs_serial`` run on a grid of
  >= 64 scenarios from a multi-core host must show
  ``distributed_speedup >= 1.0`` — the broker/worker path earning its
  keep is a regression-checked claim, not a hope.  Single-core hosts
  are exempt (a lone worker physically cannot beat serial plus
  collection overhead), as are sub-64 grids (too small to amortize
  fleet startup).
* the adaptive gate: any ``adaptive_vs_exhaustive`` run on a grid of
  >= 256 points must show ``evaluations_fraction <= 0.25`` and
  ``best_gap_pct <= 5.0`` — budgeted search only exists because it
  finds (nearly) the same optimum for a quarter of the work, and the
  trajectory is where that claim is held to account.

Exit code 0 on success, 1 with a diagnostic otherwise.  An absent file
is an error only with ``--require`` (fresh clones have no measurements
yet).

Usage: python scripts/bench_check.py [path] [--require]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: The distributed gate only binds where winning is physically possible:
#: a grid big enough to amortize the broker, on a host with >= 2 cores.
DISTRIBUTED_GATE_GRID = 64
DISTRIBUTED_GATE_CORES = 2


def _check_distributed_gate(run: dict, where: str) -> list[str]:
    if run.get("label") != "distributed_vs_serial":
        return []
    grid = run.get("grid_size")
    cores = run.get("cpu_count")
    speedup = run.get("distributed_speedup")
    if not isinstance(grid, int) or grid < DISTRIBUTED_GATE_GRID:
        return []
    if not isinstance(cores, int) or cores < DISTRIBUTED_GATE_CORES:
        return []
    if not isinstance(speedup, (int, float)):
        return [f"{where}: distributed_vs_serial run missing distributed_speedup"]
    if speedup < 1.0:
        return [
            f"{where}: distributed_speedup {speedup} < 1.0 on a "
            f"{grid}-scenario grid with {cores} cores — the distributed "
            "path regressed below serial"
        ]
    return []


#: The adaptive gate binds on spaces big enough that exhaustive sweeping
#: is the thing being beaten.
ADAPTIVE_GATE_GRID = 256
ADAPTIVE_GATE_FRACTION = 0.25
ADAPTIVE_GATE_GAP_PCT = 5.0


def _check_adaptive_gate(run: dict, where: str) -> list[str]:
    if run.get("label") != "adaptive_vs_exhaustive":
        return []
    grid = run.get("grid_size")
    if not isinstance(grid, int) or grid < ADAPTIVE_GATE_GRID:
        return []
    problems = []
    fraction = run.get("evaluations_fraction")
    if not isinstance(fraction, (int, float)):
        problems.append(
            f"{where}: adaptive_vs_exhaustive run missing evaluations_fraction"
        )
    elif fraction > ADAPTIVE_GATE_FRACTION:
        problems.append(
            f"{where}: evaluations_fraction {fraction} > "
            f"{ADAPTIVE_GATE_FRACTION} on a {grid}-point space — the search "
            "spent more than a quarter of the exhaustive sweep"
        )
    gap = run.get("best_gap_pct")
    if not isinstance(gap, (int, float)):
        problems.append(
            f"{where}: adaptive_vs_exhaustive run missing best_gap_pct"
        )
    elif gap > ADAPTIVE_GATE_GAP_PCT:
        problems.append(
            f"{where}: best_gap_pct {gap} > {ADAPTIVE_GATE_GAP_PCT} — the "
            "search's best point fell more than 5% short of the exhaustive "
            "optimum"
        )
    return problems


def _check_telemetry(run: dict, where: str) -> list[str]:
    """The optional per-run telemetry digest, when present, must be sane.

    ``benchmarks/_common.py`` attaches ``{engine_wall_s, cache_hit_rate,
    mean_chunk_size}`` from the merged recorder snapshot; each field is a
    number in its natural range or null (e.g. no chunks on a serial run).
    """
    digest = run.get("telemetry")
    if digest is None:
        return []
    if not isinstance(digest, dict):
        return [f"{where}: telemetry must be an object, got {type(digest).__name__}"]
    problems = []
    bounds = {
        "engine_wall_s": (0.0, None),
        "cache_hit_rate": (0.0, 1.0),
        "mean_chunk_size": (1.0, None),
    }
    for field, (low, high) in bounds.items():
        value = digest.get(field)
        if value is None:
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(
                f"{where}: telemetry.{field} must be a number or null, "
                f"got {value!r}"
            )
        elif value < low or (high is not None and value > high):
            problems.append(
                f"{where}: telemetry.{field} {value} outside "
                f"[{low}, {'inf' if high is None else high}]"
            )
    return problems


def check(path: Path) -> list[str]:
    """All problems found in one trajectory file (empty = healthy)."""
    try:
        doc = json.loads(path.read_text())
    except ValueError as exc:
        return [f"not valid JSON: {exc}"]

    problems = []
    if not isinstance(doc, dict):
        return [f"expected a JSON object at top level, got {type(doc).__name__}"]
    if doc.get("benchmark") != "sweep-engine":
        problems.append(
            f"unexpected benchmark field {doc.get('benchmark')!r} "
            "(expected 'sweep-engine')"
        )
    runs = doc.get("runs")
    if not isinstance(runs, list):
        return problems + ["'runs' must be a list"]

    previous = None
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: not an object")
            continue
        if not run.get("label"):
            problems.append(f"{where}: missing label")
        cpus = run.get("cpu_count")
        if not isinstance(cpus, int) or isinstance(cpus, bool) or cpus < 1:
            problems.append(
                f"{where}: cpu_count must be a positive integer, got {cpus!r}"
            )
        problems.extend(_check_distributed_gate(run, where))
        problems.extend(_check_adaptive_gate(run, where))
        problems.extend(_check_telemetry(run, where))
        stamp = run.get("timestamp")
        try:
            parsed = time.strptime(stamp, "%Y-%m-%dT%H:%M:%SZ")
        except (TypeError, ValueError):
            problems.append(f"{where}: bad timestamp {stamp!r}")
            continue
        if previous is not None and parsed < previous:
            problems.append(
                f"{where}: timestamp {stamp} precedes its predecessor — "
                "the trajectory must be monotone-appended, never rewritten"
            )
        previous = parsed
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=DEFAULT_PATH, type=Path)
    parser.add_argument(
        "--require", action="store_true",
        help="fail when the trajectory file does not exist",
    )
    args = parser.parse_args(argv)

    if not args.path.exists():
        if args.require:
            print(f"bench-check: {args.path} does not exist", file=sys.stderr)
            return 1
        print(f"bench-check: {args.path} absent (no measurements yet) — ok")
        return 0

    problems = check(args.path)
    if problems:
        for problem in problems:
            print(f"bench-check: {problem}", file=sys.stderr)
        return 1
    runs = len(json.loads(args.path.read_text())["runs"])
    print(f"bench-check: {args.path.name} ok ({runs} runs, monotone)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
