#!/usr/bin/env python3
"""Validate the BENCH_sweep.json trajectory file.

The trajectory is append-only evidence of measured speedups across PRs;
a malformed or rewound file means a benchmark run (or a merge) corrupted
it.  Checks:

* the file parses as JSON with the expected envelope,
* every run entry has a label and an ISO-8601 UTC timestamp,
* timestamps are monotone non-decreasing (append-only, never rewritten).

Exit code 0 on success, 1 with a diagnostic otherwise.  An absent file
is an error only with ``--require`` (fresh clones have no measurements
yet).

Usage: python scripts/bench_check.py [path] [--require]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def check(path: Path) -> list[str]:
    """All problems found in one trajectory file (empty = healthy)."""
    try:
        doc = json.loads(path.read_text())
    except ValueError as exc:
        return [f"not valid JSON: {exc}"]

    problems = []
    if not isinstance(doc, dict):
        return [f"expected a JSON object at top level, got {type(doc).__name__}"]
    if doc.get("benchmark") != "sweep-engine":
        problems.append(
            f"unexpected benchmark field {doc.get('benchmark')!r} "
            "(expected 'sweep-engine')"
        )
    runs = doc.get("runs")
    if not isinstance(runs, list):
        return problems + ["'runs' must be a list"]

    previous = None
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: not an object")
            continue
        if not run.get("label"):
            problems.append(f"{where}: missing label")
        stamp = run.get("timestamp")
        try:
            parsed = time.strptime(stamp, "%Y-%m-%dT%H:%M:%SZ")
        except (TypeError, ValueError):
            problems.append(f"{where}: bad timestamp {stamp!r}")
            continue
        if previous is not None and parsed < previous:
            problems.append(
                f"{where}: timestamp {stamp} precedes its predecessor — "
                "the trajectory must be monotone-appended, never rewritten"
            )
        previous = parsed
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=DEFAULT_PATH, type=Path)
    parser.add_argument(
        "--require", action="store_true",
        help="fail when the trajectory file does not exist",
    )
    args = parser.parse_args(argv)

    if not args.path.exists():
        if args.require:
            print(f"bench-check: {args.path} does not exist", file=sys.stderr)
            return 1
        print(f"bench-check: {args.path} absent (no measurements yet) — ok")
        return 0

    problems = check(args.path)
    if problems:
        for problem in problems:
            print(f"bench-check: {problem}", file=sys.stderr)
        return 1
    runs = len(json.loads(args.path.read_text())["runs"])
    print(f"bench-check: {args.path.name} ok ({runs} runs, monotone)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
