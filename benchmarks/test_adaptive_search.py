"""Adaptive search vs. exhaustive sweep: the evaluations-saved claim.

The smoke spec is a 256-point colocation space small enough to also run
exhaustively, so the gate is measured, not asserted on faith: halving
with a 64-evaluation budget (25% of the grid) must land within 5% of
the exhaustive optimum.  A second check scales the space past 1024
points — far too big to sweep here — and verifies the budget ceiling
holds without the exhaustive reference.

Every run appends an ``adaptive_vs_exhaustive`` entry to
BENCH_sweep.json; ``scripts/bench_check.py`` gates the trajectory.
"""

import pytest

from repro.experiment import run_experiment

from benchmarks._common import ENGINE, bench_spec, record_bench

pytestmark = pytest.mark.benchmark

#: 8 x 4 x 4 x 2 = 256 grid points.
SMOKE_SPEC = bench_spec(
    "adaptive-search-smoke",
    base={
        "service": "memcached",
        "apps": "kmeans",
        "horizon": 8.0,
        "monitor_epoch": 0.5,
    },
    axes={
        "load_fraction": tuple(0.45 + 0.05 * i for i in range(8)),
        "slack_threshold": (0.02, 0.05, 0.08, 0.12),
        "decision_interval": (0.5, 1.0, 2.0, 4.0),
    },
).with_axis("seed", (0, 1))  # with_axis moves seed out of the bench base

BUDGET = 64  # 25% of the smoke grid


def test_halving_beats_exhaustive_on_evaluations():
    assert len(SMOKE_SPEC) == 256

    exhaustive = run_experiment(SMOKE_SPEC, engine=ENGINE)
    searched = run_experiment(
        SMOKE_SPEC, strategy="halving", budget=BUDGET, rng_seed=0,
        engine=ENGINE,
    )

    from repro.search import Objective

    primary = Objective("qos_met_fraction")
    true_best = max(primary.score(o.result) for o in exhaustive)
    found_best = primary.score(searched.best().result)
    gap_pct = (
        0.0 if true_best == 0
        else 100.0 * (true_best - found_best) / abs(true_best)
    )

    record_bench(
        "adaptive_vs_exhaustive",
        {
            "grid_size": len(SMOKE_SPEC),
            "strategy": "halving",
            "budget": BUDGET,
            "evaluations": searched.evaluations,
            "evaluations_fraction": round(
                searched.evaluations / len(SMOKE_SPEC), 4
            ),
            "rounds": len(searched.rounds),
            "best_exhaustive": true_best,
            "best_found": found_best,
            "best_gap_pct": round(gap_pct, 4),
        },
    )

    assert searched.evaluations <= BUDGET
    assert searched.evaluations / len(SMOKE_SPEC) <= 0.25
    assert gap_pct <= 5.0, (
        f"halving best {found_best} more than 5% below exhaustive optimum "
        f"{true_best}"
    )


def test_budget_ceiling_holds_past_1024_points():
    big = SMOKE_SPEC.with_axis("seed", (0, 1, 2, 3)).with_axis(
        "slack_threshold", (0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16)
    )
    assert len(big) >= 1024
    budget = len(big) // 4
    searched = run_experiment(
        big, strategy="halving", budget=budget, rng_seed=0, engine=ENGINE
    )
    assert 0 < searched.evaluations <= budget
    assert searched.evaluations <= 0.25 * len(big)
    # The best point must be a real full-fidelity grid point.
    assert searched.best_scenario.horizon == 8.0
