"""Fig. 7: distributions across 1-, 2- and 3-way colocations.

For each service and each colocation arity, prints the violin statistics
(min / p25 / median / p75 / max / mean) of: interactive tail latency
normalized to QoS, approximate-app execution time normalized to its
single-app precise baseline, and output inaccuracy.

The paper runs every 2-/3-way combination of the 24 apps; this bench
samples combinations deterministically (REPRO_FULL_MIXES=1 runs them all).
"""

import os

from repro.cluster import ViolinStats, combination_mixes
from repro.viz import format_table

from benchmarks._common import (
    ALL_APP_NAMES,
    SERVICES,
    bench_spec,
    run_pair,
    run_spec,
)

import pytest

pytestmark = pytest.mark.benchmark

_FULL = os.environ.get("REPRO_FULL_MIXES") == "1"
_SAMPLES = {2: None if _FULL else 18, 3: None if _FULL else 14}


def _collect(service):
    """metric lists per arity: (latency ratios, rel exec times, inaccs)."""
    data = {}
    # 1-way: all 24 single-app colocations.
    ratios, rels, inaccs = [], [], []
    baselines = {}
    for app in ALL_APP_NAMES:
        precise, pliant = run_pair(service, app)
        baselines[app] = precise.app_outcome(app).finish_time
        outcome = pliant.app_outcome(app)
        ratios.append(pliant.qos_ratio)
        if outcome.finish_time and baselines[app]:
            rels.append(outcome.finish_time / baselines[app])
        inaccs.append(outcome.inaccuracy_pct)
    data[1] = (ratios, rels, inaccs)

    for arity in (2, 3):
        mixes = combination_mixes(
            ALL_APP_NAMES, arity, sample=_SAMPLES[arity], seed=13
        )
        # One spec per arity: the whole mix batch fans out together.
        results = run_spec(
            bench_spec(
                f"fig7-{service}-{arity}way",
                base={"service": service},
                axes={"apps": mixes},
            )
        )
        ratios, rels, inaccs = [], [], []
        for scenario_result in results.results:
            ratios.append(scenario_result.qos_ratio)
            for app_outcome in scenario_result.apps:
                if app_outcome.finish_time and baselines[app_outcome.name]:
                    rels.append(
                        app_outcome.finish_time / baselines[app_outcome.name]
                    )
                inaccs.append(app_outcome.inaccuracy_pct)
        data[arity] = (ratios, rels, inaccs)
    return data


def test_fig7_violin(benchmark, capsys):
    collected = benchmark.pedantic(
        lambda: {s: _collect(s) for s in SERVICES}, rounds=1, iterations=1
    )

    with capsys.disabled():
        print()
        scope = "all combinations" if _FULL else "sampled combinations"
        print(f"=== Fig. 7: violin statistics ({scope}) ===")
        for service, data in collected.items():
            rows = []
            for arity, (ratios, rels, inaccs) in data.items():
                for label, values in (
                    ("p99/QoS", ratios),
                    ("rel exec", rels),
                    ("inacc %", inaccs),
                ):
                    stats = ViolinStats.from_values(values)
                    rows.append(
                        [
                            f"{arity} app{'s' if arity > 1 else ''}",
                            label,
                            round(stats.minimum, 2),
                            round(stats.p25, 2),
                            round(stats.median, 2),
                            round(stats.p75, 2),
                            round(stats.maximum, 2),
                            round(stats.mean, 2),
                            stats.count,
                        ]
                    )
            print(f"\n--- {service} ---")
            print(
                format_table(
                    ["mix", "metric", "min", "p25", "med", "p75", "max", "mean", "n"],
                    rows,
                )
            )

    # Shape assertions: inaccuracy distributions tighten as consolidation
    # grows (the paper's "violins become more centralized"), and QoS holds.
    for service, data in collected.items():
        spread_1 = ViolinStats.from_values(data[1][2]).spread()
        spread_3 = ViolinStats.from_values(data[3][2]).spread()
        assert spread_3 <= spread_1 + 1.0, service
        for arity in (1, 2, 3):
            stats = ViolinStats.from_values(data[arity][0])
            assert stats.median <= 1.1, (service, arity)
        # Inaccuracy never exceeds the threshold by more than elision noise.
        for arity in (1, 2, 3):
            assert max(data[arity][2]) < 6.5
