"""Fig. 9: sensitivity to the decision-interval granularity.

memcached colocated with the six PARSEC/SPLASH-2 apps, sweeping Pliant's
decision interval from 0.2s to 8s.  The paper's finding: intervals of 1s or
less always satisfy QoS; coarser intervals leave prolonged violations.
"""

from repro.viz import format_table

from benchmarks._common import bench_spec, run_spec

import pytest

pytestmark = pytest.mark.benchmark

FIG9_APPS = (
    "fluidanimate",
    "canneal",
    "raytrace",
    "water_nsquared",
    "water_spatial",
    "streamcluster",
)
INTERVALS = (0.2, 1.0, 2.0, 4.0, 6.0, 8.0)


def test_fig9_decision_interval(benchmark, capsys):
    spec = bench_spec(
        "fig9-decision-interval",
        base={"service": "memcached"},
        axes={"apps": FIG9_APPS, "decision_interval": INTERVALS},
    )

    def sweep():
        results = run_spec(spec)
        return {
            (o.scenario.apps[0], o.scenario.decision_interval): o.result
            for o in results
        }

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(
            "=== Fig. 9: decision-interval sweep "
            "(memcached; p99/QoS | met-interval fraction | inaccuracy %) ==="
        )
        rows = []
        for app in FIG9_APPS:
            cells = []
            for interval in INTERVALS:
                result = table[(app, interval)]
                outcome = result.app_outcome(app)
                cells.append(
                    f"{result.qos_ratio:.2f}|{result.qos_met_fraction():.2f}"
                    f"|{outcome.inaccuracy_pct:.1f}"
                )
            rows.append([app] + cells)
        print(format_table(["app"] + [f"{i}s" for i in INTERVALS], rows))

    # Fine intervals meet QoS...
    for app in FIG9_APPS:
        for interval in (0.2, 1.0):
            assert table[(app, interval)].qos_met, (app, interval)
    # ...while coarse intervals leave longer violation exposure: the met
    # fraction at 8s must not beat the 1s one for the contention-heavy apps.
    degraded = 0
    for app in FIG9_APPS:
        fine = table[(app, 1.0)].qos_met_fraction()
        coarse = table[(app, 8.0)].qos_met_fraction()
        if coarse < fine - 0.02:
            degraded += 1
    assert degraded >= 3
    # Quality budget holds across all intervals.
    for (app, interval), result in table.items():
        assert result.app_outcome(app).inaccuracy_pct < 6.5
