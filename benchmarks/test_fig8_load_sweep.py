"""Fig. 8: sensitivity to input load (QPS).

Sweeps offered load from 40% to 100% of saturation for each service, under
Pliant, for a representative app subset; prints tail latency and the app's
relative execution time per load level.  Also reproduces the paper's
precise-only comparison: the highest load at which a precise colocation
still meets QoS (paper: NGINX 340K QPS = 48%, memcached 280K = 46%,
MongoDB 310 = 77%).
"""

import time

import numpy as np
import pytest

from repro.services import make_service
from repro.viz import format_table

from benchmarks._common import (
    SERVICES,
    bench_spec,
    record_bench,
    run_point,
    run_spec,
)

pytestmark = pytest.mark.benchmark

SWEEP_APPS = ("canneal", "kmeans", "snp", "water_spatial", "hmmer", "plsa")
LOADS = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _precise_max_load(service, app="canneal"):
    """Highest load fraction (2% steps) where precise colocation meets QoS."""
    best = 0.0
    for load in np.arange(0.30, 1.01, 0.02):
        result = run_point(
            service=service, apps=(app,), policy="precise",
            load_fraction=float(load),
        )
        if result.qos_met:
            best = float(load)
        else:
            break
    return best


def test_fig8_load_sweep(benchmark, capsys):
    spec = bench_spec(
        "fig8-load-sweep",
        axes={
            "service": SERVICES,
            "apps": SWEEP_APPS,
            "load_fraction": LOADS,
        },
    )

    start = time.perf_counter()
    results = benchmark.pedantic(
        lambda: run_spec(spec), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    record_bench(
        "fig8_load_sweep",
        {
            "grid_size": len(spec),
            "wall_clock_s": round(elapsed, 3),
            "cache_hits": results.cache_hits,
            "scenario_compute_s": round(results.compute_seconds, 3),
        },
    )
    table = {
        (o.scenario.service, o.scenario.apps[0], o.scenario.load_fraction): o.result
        for o in results
    }

    with capsys.disabled():
        print()
        print("=== Fig. 8: load sweep (Pliant, p99/QoS | relative finish time) ===")
        for service in SERVICES:
            sat = make_service(service).saturation_qps(8)
            rows = []
            for app in SWEEP_APPS:
                base = table[(service, app, 0.4)].app_outcome(app).finish_time
                cells = []
                for load in LOADS:
                    result = table[(service, app, load)]
                    finish = result.app_outcome(app).finish_time
                    rel = finish / base if (finish and base) else float("nan")
                    cells.append(f"{result.qos_ratio:.2f}|{rel:.2f}")
                rows.append([app] + cells)
            print(f"\n--- {service} (saturation = {sat:,.0f} QPS at 8 cores) ---")
            print(
                format_table(
                    ["app"] + [f"{int(100 * l)}%" for l in LOADS], rows
                )
            )

        print()
        print("=== precise-only maximum load meeting QoS (paper -> measured) ===")
        expected = {"nginx": 0.48, "memcached": 0.46, "mongodb": 0.77}
        measured = {}
        for service in SERVICES:
            measured[service] = _precise_max_load(service)
            sat = make_service(service).saturation_qps(8)
            print(
                f"{service}: paper {int(100 * expected[service])}% -> "
                f"measured {int(100 * measured[service])}% "
                f"({measured[service] * sat:,.0f} QPS)"
            )

    # Shape assertions.
    for service in SERVICES:
        # Low load: everything fine; saturation: violations dominate
        # (paper: beyond ~90% violations persist; our substrate lets the
        # strongest decontenders save a few pairs even at 100% — see
        # EXPERIMENTS.md).
        for app in SWEEP_APPS:
            assert table[(service, app, 0.4)].qos_met, (service, app)
        violated_at_full = sum(
            not table[(service, app, 1.0)].qos_met for app in SWEEP_APPS
        )
        violated_at_low = sum(
            not table[(service, app, 0.5)].qos_met for app in SWEEP_APPS
        )
        assert violated_at_full >= len(SWEEP_APPS) // 2, service
        assert violated_at_full > violated_at_low, service
    # Precise-only max load: mongodb tolerates the most load and both
    # nginx/memcached give up well before their Pliant-assisted range.
    # (Paper: 48/46/77%.  Our inflation ceiling — calibrated to the 77.5%
    # operating point — shifts the crossings upward; the ordering and the
    # "precise gives up far earlier than Pliant" shape are what reproduce.)
    assert measured["mongodb"] > measured["nginx"] >= 0.30
    assert measured["mongodb"] > measured["memcached"] >= 0.30
    assert measured["nginx"] <= 0.72 and measured["memcached"] <= 0.72
