"""Shared machinery for the figure/table benchmarks.

Single-app (service, app) precise/pliant run pairs are cached process-wide
so Fig. 5, Fig. 7 and Fig. 10 share work within one pytest session.
"""

from __future__ import annotations

from functools import lru_cache

from repro.apps import ALL_APP_NAMES, make_app
from repro.cluster import compare_policies, ladder_for
from repro.core import PliantPolicy, PrecisePolicy
from repro.core.runtime import ColocationConfig, ColocationResult

SERVICES = ("nginx", "memcached", "mongodb")
SEED = 2

#: Latency display units per service (value, label).
SERVICE_UNITS = {
    "nginx": (1e3, "ms"),
    "memcached": (1e6, "us"),
    "mongodb": (1e3, "ms"),
}


def config(**kwargs) -> ColocationConfig:
    merged = {"seed": SEED}
    merged.update(kwargs)
    return ColocationConfig(**merged)


@lru_cache(maxsize=256)
def run_pair(service: str, app: str) -> tuple[ColocationResult, ColocationResult]:
    """(precise, pliant) results for a single-app colocation at 77.5% load."""
    results = compare_policies(
        service,
        [app],
        [PrecisePolicy(), PliantPolicy(seed=SEED)],
        config=config(),
    )
    return results["precise"], results["pliant"]


@lru_cache(maxsize=1024)
def run_pliant_mix(service: str, apps: tuple[str, ...]) -> ColocationResult:
    """Pliant run for a multi-app mix."""
    from repro.cluster import build_engine

    engine = build_engine(service, list(apps), PliantPolicy(seed=SEED), config=config())
    return engine.run()


def app_overhead(app_name: str) -> float:
    return make_app(app_name).metadata.dynrio_overhead


def ladder(app_name: str):
    return ladder_for(app_name, seed=0)


__all__ = [
    "ALL_APP_NAMES",
    "SEED",
    "SERVICES",
    "SERVICE_UNITS",
    "app_overhead",
    "config",
    "ladder",
    "run_pair",
    "run_pliant_mix",
]
