"""Shared machinery for the figure/table benchmarks.

All colocation runs go through :func:`repro.experiment.run_experiment`
against one process-wide :class:`SweepEngine` backed by the on-disk
:class:`SweepCache`, so figure drivers share work within a pytest
session (via the ``lru_cache`` layer) *and* across sessions (via the
content-addressed result cache) — a benchmark rerun with unchanged
configs is almost entirely disk reads.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from pathlib import Path

from repro.apps import ALL_APP_NAMES, make_app
from repro.cas import atomic_write_bytes
from repro.cluster import ladder_for
from repro.core.runtime import ColocationConfig, ColocationResult
from repro.experiment import ExperimentSpec, ResultSet, run_experiment
from repro.sweep import Scenario, SweepCache, SweepEngine, backend_from_env

SERVICES = ("nginx", "memcached", "mongodb")
SEED = 2

#: Benchmarks always run instrumented: every trajectory entry carries a
#: telemetry digest (engine wall, cache hit rate, chunk sizes) so a
#: speedup claim comes with the evidence for *why*.  Opt out with
#: REPRO_TELEMETRY=0.  Results are unaffected either way — the parity
#: tests and the telemetry-side-channel lint rule hold that line.
os.environ.setdefault("REPRO_TELEMETRY", "1")

#: Latency display units per service (value, label).
SERVICE_UNITS = {
    "nginx": (1e3, "ms"),
    "memcached": (1e6, "us"),
    "mongodb": (1e3, "ms"),
}

#: Trajectory file the sweep benchmarks append their measurements to.
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

def resolve_workers(environ=None) -> int:
    """Worker count for the bench engine: REPRO_SWEEP_WORKERS, else cores.

    The engine's own ``workers=None`` default already falls back to
    ``os.cpu_count()``, but resolving here makes ``REPRO_SWEEP_WORKERS``
    steer *every* bench substrate (it used to only set the distributed
    backend's local fleet) and pins the count the moment the module
    loads, so every figure driver in a session measures the same width.
    """
    env = os.environ if environ is None else environ
    raw = (env.get("REPRO_SWEEP_WORKERS") or "").strip()
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


#: Process-wide engine: memoized on disk; parallel across
#: :func:`resolve_workers` cores by default, or any substrate named by
#: REPRO_SWEEP_BACKEND — e.g. ``REPRO_SWEEP_BACKEND=distributed
#: REPRO_SWEEP_SPOOL=/share/spool`` (or ``tcp://host:port``) re-points
#: every figure driver at a worker fleet with no code changes.
ENGINE = SweepEngine(
    workers=resolve_workers(), cache=SweepCache(), backend=backend_from_env()
)


def config(**kwargs) -> ColocationConfig:
    merged = {"seed": SEED}
    merged.update(kwargs)
    return ColocationConfig(**merged)


def scenario(service: str, apps, policy: str = "pliant", **kwargs) -> Scenario:
    """A benchmark scenario: seed 2, paper-default knobs unless overridden."""
    merged = {"seed": SEED}
    merged.update(kwargs)
    return Scenario(service=service, apps=tuple(apps), policy=policy, **merged)


def bench_spec(name: str, base: dict | None = None, axes: dict | None = None) -> ExperimentSpec:
    """A benchmark experiment spec: seed 2 unless the base overrides it."""
    merged = {"seed": SEED}
    merged.update(base or {})
    return ExperimentSpec(name=name, base=merged, axes=axes or {})


def run_spec(spec: ExperimentSpec, force: bool = False) -> ResultSet:
    """Run a spec through the shared engine (cache + env backend)."""
    return run_experiment(spec, engine=ENGINE, force=force)


def run_point(force: bool = False, **fields) -> ColocationResult:
    """One scenario through the shared engine; seed 2 unless overridden."""
    merged = {"seed": SEED}
    merged.update(fields)
    return run_experiment([Scenario(**merged)], engine=ENGINE, force=force)[0].result


@lru_cache(maxsize=256)
def run_pair(service: str, app: str) -> tuple[ColocationResult, ColocationResult]:
    """(precise, pliant) results for a single-app colocation at 77.5% load."""
    results = run_spec(
        bench_spec(
            f"pair/{service}/{app}",
            base={"service": service, "apps": (app,)},
            axes={"policy": ("precise", "pliant")},
        )
    )
    return results.lookup(policy="precise"), results.lookup(policy="pliant")


@lru_cache(maxsize=1024)
def run_pliant_mix(service: str, apps: tuple[str, ...]) -> ColocationResult:
    """Pliant run for a multi-app mix."""
    return run_point(service=service, apps=apps, policy="pliant")


def app_overhead(app_name: str) -> float:
    return make_app(app_name).metadata.dynrio_overhead


def ladder(app_name: str):
    return ladder_for(app_name, seed=0)


def telemetry_summary() -> dict | None:
    """Fleet-wide telemetry digest for a bench entry (None when off).

    Pulls the live recorder snapshot plus any worker shards, so a
    distributed bench reports chunk sizes measured on the actual fleet.
    """
    from repro import telemetry

    if not telemetry.get_recorder().enabled:
        return None
    merged = telemetry.summary()
    counters = merged.get("counters", {})
    hits = counters.get("sweep.cache.hit", 0.0)
    probes = hits + counters.get("sweep.cache.miss", 0.0)
    engine = merged.get("span_totals", {}).get("sweep.run")
    chunk = merged.get("hists", {}).get("worker.chunk_size")
    return {
        "engine_wall_s": round(engine["total_s"], 6) if engine else None,
        "cache_hit_rate": round(hits / probes, 4) if probes else None,
        "mean_chunk_size": (
            round(chunk["mean"], 3) if chunk and chunk["count"] else None
        ),
    }


def record_bench(label: str, payload: dict) -> None:
    """Append one measurement entry to the BENCH_sweep.json trajectory.

    The read-modify-write runs under an exclusive file lock so entries
    from concurrent benchmark processes are never lost; the write itself
    is atomic so a crash never tears the trajectory.
    """
    import fcntl

    lock_path = BENCH_PATH.with_suffix(".lock")
    with open(lock_path, "w") as lock:
        fcntl.flock(lock, fcntl.LOCK_EX)
        doc = {"benchmark": "sweep-engine", "runs": []}
        if BENCH_PATH.exists():
            try:
                loaded = json.loads(BENCH_PATH.read_text())
                if isinstance(loaded.get("runs"), list):
                    doc = loaded
            except (OSError, ValueError):
                pass  # unreadable trajectory: start fresh rather than crash
        entry = {
            "label": label,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "cpu_count": os.cpu_count(),
            **payload,
        }
        digest = telemetry_summary()
        if digest is not None and "telemetry" not in entry:
            entry["telemetry"] = digest
        doc["runs"].append(entry)
        atomic_write_bytes(
            BENCH_PATH, (json.dumps(doc, indent=1) + "\n").encode()
        )


__all__ = [
    "ALL_APP_NAMES",
    "BENCH_PATH",
    "ENGINE",
    "SEED",
    "SERVICES",
    "SERVICE_UNITS",
    "app_overhead",
    "bench_spec",
    "config",
    "ladder",
    "record_bench",
    "resolve_workers",
    "run_pair",
    "run_pliant_mix",
    "run_point",
    "run_spec",
    "scenario",
    "telemetry_summary",
]
