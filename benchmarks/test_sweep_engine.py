"""Sweep-engine speedup benchmark (the tentpole's measured claims).

Runs a Fig. 8-style load sweep three ways and appends the measurements to
``BENCH_sweep.json``:

* **serial vs parallel** — the same grid through 1 worker and through one
  worker per core; results must be bit-identical, and on a 4+-core host
  the parallel pass must be >= 4x faster.
* **cold vs warm cache** — a second pass over an already-populated result
  cache must cost < 10% of the cold pass.
* **scalar vs vectorized** — the request-level load sweep through the
  event-driven :class:`QueueSimulator` (one run per load) vs the batched
  Kiefer-Wolfowitz recursion (all loads at once), equal request counts;
  the vectorized hot path must be >= 4x faster on any host.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np
import pytest

from repro.sim.analytic import mmc_tail_latency, mmc_tail_latency_batch
from repro.sim.distributions import Exponential
from repro.sim.queueing import QueueSimulator, batch_load_sweep
from repro.sweep import (
    DistributedBackend,
    ProcessBackend,
    SerialBackend,
    SweepCache,
    SweepEngine,
    SweepGrid,
    TcpBroker,
    results_identical,
)

from benchmarks._common import SEED, record_bench, scenario

pytestmark = pytest.mark.benchmark

SWEEP_APPS = ("canneal", "kmeans", "snp")
LOADS = (0.4, 0.55, 0.7, 0.85, 1.0)


def _grid() -> SweepGrid:
    return SweepGrid(
        services=("memcached",),
        app_mixes=tuple((app,) for app in SWEEP_APPS),
        policies=("pliant",),
        load_fractions=LOADS,
        seeds=(SEED,),
        base=scenario("memcached", (SWEEP_APPS[0],)),
    )


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_sweep_engine_speedup(capsys):
    grid = _grid()
    cores = os.cpu_count() or 1

    # -- serial vs parallel (identical results, wall-clock gap) ----------
    serial, t_serial = _timed(
        lambda: SweepEngine(backend=SerialBackend()).run(grid)
    )
    parallel, t_parallel = _timed(
        lambda: SweepEngine(backend=ProcessBackend()).run(grid)
    )
    identical = all(
        results_identical(a.result, b.result) for a, b in zip(serial, parallel)
    )
    parallel_speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")

    # -- cold vs warm cache ---------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        engine = SweepEngine(cache=SweepCache(tmp))
        cold, t_cold = _timed(lambda: engine.run(grid))
        warm, t_warm = _timed(lambda: engine.run(grid))
    warm_hits = sum(1 for o in warm if o.from_cache)
    warm_fraction = t_warm / t_cold if t_cold > 0 else float("inf")

    # -- scalar vs vectorized request-level sweep ------------------------
    service = Exponential(0.02)
    rates = np.linspace(30.0, 90.0, 7)
    n_requests = 50_000

    def scalar_queue_sweep():
        return [
            QueueSimulator(2, service, float(rate), seed=3).run(n_requests / rate)
            for rate in rates
        ]

    _, t_scalar_q = _timed(scalar_queue_sweep)
    _, t_batch_q = _timed(
        lambda: batch_load_sweep(2, service, rates, n_requests, seed=3)
    )
    vectorized_speedup = t_scalar_q / t_batch_q if t_batch_q > 0 else float("inf")

    # -- scalar vs vectorized analytic surface ---------------------------
    lam = np.linspace(10.0, 780.0, 4000)
    svc = np.full_like(lam, 0.01)
    _, t_scalar_a = _timed(
        lambda: [mmc_tail_latency(l, 0.01, 8) for l in lam]
    )
    _, t_batch_a = _timed(lambda: mmc_tail_latency_batch(lam, svc, 8))
    analytic_speedup = t_scalar_a / t_batch_a if t_batch_a > 0 else float("inf")

    record_bench(
        "sweep_engine_speedup",
        {
            "grid_size": len(grid),
            "serial_s": round(t_serial, 3),
            "parallel_s": round(t_parallel, 3),
            "parallel_workers": cores,
            "parallel_speedup": round(parallel_speedup, 2),
            "serial_parallel_identical": identical,
            "cold_s": round(t_cold, 3),
            "warm_s": round(t_warm, 3),
            "warm_fraction": round(warm_fraction, 4),
            "warm_cache_hits": warm_hits,
            "vectorized_queueing_speedup": round(vectorized_speedup, 2),
            "vectorized_analytic_speedup": round(analytic_speedup, 2),
        },
    )

    with capsys.disabled():
        print()
        print("=== sweep engine: Fig. 8-style grid "
              f"({len(grid)} scenarios, {cores} cores) ===")
        print(f"serial {t_serial:.2f}s  parallel {t_parallel:.2f}s "
              f"({parallel_speedup:.2f}x)  identical: {identical}")
        print(f"cold {t_cold:.2f}s  warm {t_warm:.3f}s "
              f"({100 * warm_fraction:.1f}% of cold, {warm_hits} hits)")
        print(f"vectorized queueing sweep: {vectorized_speedup:.1f}x; "
              f"vectorized analytic surface: {analytic_speedup:.1f}x")

    assert identical, "serial and parallel sweeps must be bit-identical"
    assert warm_hits == len(grid)
    assert warm_fraction < 0.10, f"warm cache cost {warm_fraction:.1%} of cold"
    assert vectorized_speedup >= 4.0, (
        f"vectorized queueing sweep only {vectorized_speedup:.1f}x faster"
    )
    if cores >= 4:
        assert parallel_speedup >= 4.0, (
            f"parallel sweep only {parallel_speedup:.1f}x on {cores} cores"
        )


def _dist_grid() -> SweepGrid:
    """64 scenarios: big enough that chunked leases amortize the broker."""
    return SweepGrid(
        services=("memcached", "mongodb"),
        app_mixes=(("canneal",), ("kmeans",)),
        policies=("pliant",),
        load_fractions=(0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        seeds=(SEED, SEED + 1),
        base=scenario("memcached", ("canneal",)),
    )


@pytest.mark.parametrize("transport", ["filesystem", "tcp"])
def test_distributed_speedup(transport, tmp_path, capsys):
    """Distributed-vs-serial on a 64-scenario grid: identical bits, and on
    a multi-core host the distributed pass must actually be faster.

    Workers are spawned and warmed (interpreter import plus one throwaway
    sweep) *before* the timed pass — the steady-state cost of the
    broker/worker path is what the paper-scale sweeps pay, and one-off
    fleet startup is amortized across hours there, not 1.3 seconds.  The
    serial reference writes to its own fresh cache so both sides pay
    result serialization.
    """
    grid = _dist_grid()
    cores = os.cpu_count() or 1
    workers = min(cores, 4)

    serial_engine = SweepEngine(
        cache=SweepCache(tmp_path / "serial-cache"), backend=SerialBackend()
    )
    serial, t_serial = _timed(lambda: serial_engine.run(grid))

    broker = None
    if transport == "tcp":
        broker = TcpBroker()
        spool_spec = broker.start()
    else:
        spool_spec = str(tmp_path / "spool")
    cache = SweepCache(tmp_path / "cache")
    backend = DistributedBackend(
        spool_spec, cache=cache, lease_ttl=30.0, timeout=600.0
    )
    engine = SweepEngine(cache=cache, backend=backend)
    procs = [
        backend.spawn_local_worker(i, exit_when_idle=False)
        for i in range(workers)
    ]
    try:
        warmup = [
            scenario("memcached", ("canneal",), seed=SEED + 50 + i)
            for i in range(2 * workers)
        ]
        engine.run(warmup)
        distributed, t_distributed = _timed(lambda: engine.run(grid))
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)
        if broker is not None:
            broker.stop()
    identical = all(
        results_identical(a.result, b.result)
        for a, b in zip(serial, distributed)
    )
    speedup = t_serial / t_distributed if t_distributed > 0 else float("inf")

    record_bench(
        "distributed_vs_serial",
        {
            "transport": transport,
            "grid_size": len(grid),
            "serial_s": round(t_serial, 3),
            "distributed_s": round(t_distributed, 3),
            "distributed_workers": workers,
            "distributed_speedup": round(speedup, 2),
            "distributed_serial_identical": identical,
        },
    )

    with capsys.disabled():
        print()
        print(f"=== distributed backend ({transport}): {len(grid)} scenarios, "
              f"{workers} warm workers ===")
        print(f"serial {t_serial:.2f}s  distributed {t_distributed:.2f}s "
              f"({speedup:.2f}x)  identical: {identical}")

    assert identical, "distributed and serial sweeps must be bit-identical"
    if cores >= 2:
        assert speedup >= 1.0, (
            f"distributed ({transport}) only {speedup:.2f}x serial on "
            f"{cores} cores with {workers} warm workers"
        )
