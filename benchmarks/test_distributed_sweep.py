"""End-to-end distributed sweep smoke (the subsystem's acceptance bar).

One test per transport, the whole story: a >= 32-scenario grid runs
serially for ground truth, then cold through the distributed backend
with two local workers — one of which is SIGKILLed mid-sweep, so
completion *requires* lease expiry and reassignment.  The surviving
worker drains the queue, results must match the serial pass bit-for-bit,
and a warm rerun must be served >= 95 % from the shared cache.  The same
script runs over the filesystem spool (``make sweep-smoke``) and the
asyncio TCP broker (``make sweep-smoke-tcp``).
"""

from __future__ import annotations

import signal
import time

import pytest

from repro.sweep import (
    DistributedBackend,
    SerialBackend,
    SweepCache,
    SweepEngine,
    SweepGrid,
    TcpBroker,
    results_identical,
    transport_from_spec,
)

from repro import telemetry

from benchmarks._common import SEED, record_bench, scenario

pytestmark = pytest.mark.benchmark

#: 2 services x 2 mixes x 2 policies x 2 loads x 2 seeds = 32 scenarios.
SMOKE_GRID = SweepGrid(
    services=("memcached", "mongodb"),
    app_mixes=(("kmeans",), ("canneal", "snp")),
    policies=("pliant", "precise"),
    load_fractions=(0.6, 0.85),
    seeds=(SEED, SEED + 1),
    base=scenario("memcached", ("kmeans",), horizon=120.0),
)

LEASE_TTL = 3.0


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


@pytest.mark.parametrize("transport_kind", ["filesystem", "tcp"])
def test_distributed_smoke_with_worker_kill(transport_kind, tmp_path, capsys):
    grid = SMOKE_GRID
    assert len(grid) >= 32

    serial, t_serial = _timed(
        lambda: SweepEngine(backend=SerialBackend()).run(grid)
    )

    broker = None
    if transport_kind == "tcp":
        broker = TcpBroker(lease_ttl=LEASE_TTL)
        spool_spec = broker.start()
    else:
        spool_spec = str(tmp_path / "spool")
    try:
        # -- cold distributed pass, killing one worker mid-sweep ----------
        cache = SweepCache(tmp_path / "cache")
        backend = DistributedBackend(
            spool_spec,
            cache=cache,
            lease_ttl=LEASE_TTL,
            timeout=900.0,
            local_workers=1,  # the survivor; the victim is spawned by hand
        )
        transport = transport_from_spec(spool_spec, lease_ttl=LEASE_TTL)
        transport.submit_many(grid.scenarios())

        victim = backend.spawn_local_worker(index=99)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status = transport.status()
            # Kill while the victim plausibly holds a lease and work
            # remains, so its chunk must be reassigned via lease expiry.
            if status.running >= 1 and status.done < status.total - 2:
                break
            time.sleep(0.02)
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        killed_at_status = transport.status()

        engine = SweepEngine(cache=cache, backend=backend)
        distributed, t_distributed = _timed(lambda: engine.run(grid))
        identical = all(
            results_identical(a.result, b.result)
            for a, b in zip(serial, distributed)
        )

        # -- warm rerun must be nearly free -------------------------------
        warm, t_warm = _timed(lambda: engine.run(grid))
        final_status = transport.status()
    finally:
        if broker is not None:
            broker.stop()
        telemetry.flush()  # the submitter's own shard joins the timeline
    warm_hits = sum(1 for outcome in warm if outcome.from_cache)
    warm_hit_fraction = warm_hits / len(grid)

    speedup = t_serial / t_distributed if t_distributed > 0 else float("inf")
    record_bench(
        "distributed_smoke",
        {
            "transport": transport_kind,
            "grid_size": len(grid),
            "serial_s": round(t_serial, 3),
            "distributed_s": round(t_distributed, 3),
            "distributed_speedup": round(speedup, 2),
            "worker_killed_mid_sweep": True,
            "jobs_done_at_kill": killed_at_status.done,
            "distributed_serial_identical": identical,
            "warm_hit_fraction": round(warm_hit_fraction, 4),
            "warm_s": round(t_warm, 3),
        },
    )

    with capsys.disabled():
        print()
        print(f"=== distributed smoke ({transport_kind}): {len(grid)} "
              f"scenarios, 2 workers, 1 killed mid-sweep ===")
        print(f"at kill: {killed_at_status.done} done, "
              f"{killed_at_status.running} running, "
              f"{killed_at_status.pending} pending")
        print(f"serial {t_serial:.2f}s  distributed {t_distributed:.2f}s "
              f"({speedup:.2f}x)  identical: {identical}")
        print(f"warm rerun: {100 * warm_hit_fraction:.1f}% from cache "
              f"in {t_warm:.2f}s")

    assert identical, "distributed results must match serial bit-for-bit"
    assert final_status.done == final_status.total
    assert warm_hit_fraction >= 0.95, (
        f"warm rerun only {warm_hit_fraction:.1%} from cache"
    )

    # -- observability: the merged trace covers the whole fleet -----------
    if telemetry.get_recorder().enabled:
        trace = telemetry.chrome_trace(telemetry.default_dir())
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events}
        assert len(pids) >= 3, (
            "merged Chrome trace should show submitter + both workers, "
            f"got {len(pids)} process track(s)"
        )
        span_names = {e["name"] for e in events if e["ph"] == "X"}
        assert "scenario.run" in span_names, (
            "per-scenario spans missing from the merged timeline"
        )
