"""Ablation: Pliant against its single-lever variants.

Not a paper figure, but the design-choices study DESIGN.md calls out: the
full runtime (approximation first, cores second) against core-reclamation
alone, static most-approximate pinning, and the Section 6.5 impact-aware
arbiter on a 2-app mix.
"""

from repro.viz import format_table

from benchmarks._common import bench_spec, run_spec

import pytest

pytestmark = pytest.mark.benchmark

PAIRS = (("memcached", "canneal"), ("nginx", "kmeans"), ("mongodb", "snp"))

#: Registry name -> the row label DESIGN.md uses.
SINGLE_LEVER = (
    ("pliant", "pliant"),
    ("core-reclaim-only", "cores-only"),
    ("static-most-approx", "static-max"),
)
ARBITERS = (("pliant", "round-robin"), ("pliant-impact", "impact-aware"))


def test_ablation_policies(benchmark, capsys):
    def run_all():
        out = {}
        for service, app in PAIRS:
            results = run_spec(
                bench_spec(
                    f"ablation-{service}-{app}",
                    base={"service": service, "apps": (app,)},
                    axes={"policy": tuple(p for p, _ in SINGLE_LEVER)},
                )
            )
            out[(service, app)] = {
                label: results.lookup(policy=policy)
                for policy, label in SINGLE_LEVER
            }
        results = run_spec(
            bench_spec(
                "ablation-arbiters",
                base={"service": "nginx", "apps": ("canneal", "bayesian")},
                axes={"policy": tuple(p for p, _ in ARBITERS)},
            )
        )
        out[("nginx", "canneal+bayesian")] = {
            label: results.lookup(policy=policy) for policy, label in ARBITERS
        }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("=== Ablation: policy comparison ===")
        rows = []
        for key, by_policy in results.items():
            service, apps = key
            for policy_name, result in by_policy.items():
                finishes = [
                    a.finish_time for a in result.apps if a.finish_time is not None
                ]
                rows.append(
                    [
                        f"{service}+{apps}",
                        policy_name,
                        round(result.qos_ratio, 2),
                        "yes" if result.qos_met else "NO",
                        round(max(finishes), 1) if finishes else "-",
                        round(max(a.inaccuracy_pct for a in result.apps), 2),
                        result.max_cores_reclaimed(),
                    ]
                )
        print(
            format_table(
                ["scenario", "policy", "p99/QoS", "met", "finish s", "inacc %", "cores"],
                rows,
            )
        )

    for (service, app) in PAIRS:
        by_policy = results[(service, app)]
        # Pliant meets QoS everywhere; cores-only must burn more cores (or
        # fail); static-max sacrifices quality without the cores lever.
        assert by_policy["pliant"].qos_met
        if by_policy["cores-only"].qos_met:
            assert (
                by_policy["cores-only"].max_cores_reclaimed()
                >= by_policy["pliant"].max_cores_reclaimed()
            )
        assert by_policy["static-max"].max_cores_reclaimed() == 0
    multi = results[("nginx", "canneal+bayesian")]
    assert multi["round-robin"].qos_met
    assert multi["impact-aware"].qos_met
