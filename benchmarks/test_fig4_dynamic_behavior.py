"""Fig. 4: Pliant's dynamic behavior.

Three services x four representative approximate apps (canneal, raytrace,
bayesian, SNP).  For each colocation, prints the p99 timeline, the active
approximation level and the cores reclaimed — the three panels of each
paper subplot — plus summary statistics.
"""

from repro.viz import format_timeline

from benchmarks._common import SERVICES, SERVICE_UNITS, ladder, run_pair

import pytest

pytestmark = pytest.mark.benchmark

FIG4_APPS = ("canneal", "raytrace", "bayesian", "snp")


def test_fig4_dynamic_behavior(benchmark, capsys):
    # Benchmark one representative colocation run end-to-end; force=True
    # bypasses cache reads so the engine itself is what gets measured.
    from benchmarks._common import run_point

    def one_run():
        return run_point(
            service="nginx", apps=("canneal",), seed=3, force=True
        )

    benchmark.pedantic(one_run, rounds=1, iterations=1)

    lines = []
    checks = []
    for service in SERVICES:
        scale, unit = SERVICE_UNITS[service]
        for app in FIG4_APPS:
            _, pliant = run_pair(service, app)
            outcome = pliant.app_outcome(app)
            lad = ladder(app)
            lines.append(
                f"\n--- {service} + {app} ({lad.max_level} approx levels) ---"
            )
            lines.append(
                format_timeline(
                    pliant.epoch_p99 / pliant.qos, label="p99/QoS ", ceiling=3.0
                )
            )
            lines.append(
                format_timeline(
                    pliant.epoch_app_levels[app],
                    label="level   ",
                    ceiling=max(lad.max_level, 1),
                )
            )
            reclaimed = (
                pliant.epoch_app_cores[app][0] - pliant.epoch_app_cores[app]
            )
            lines.append(
                format_timeline(reclaimed, label="reclaimed", ceiling=4.0)
            )
            lines.append(
                f"aggregate p99 = {pliant.aggregate_p99 * scale:.1f}{unit} "
                f"(QoS {pliant.qos * scale:.1f}{unit})  "
                f"met {pliant.qos_met_fraction() * 100:.0f}% of intervals  "
                f"max cores reclaimed {pliant.max_cores_reclaimed()}  "
                f"final inaccuracy {outcome.inaccuracy_pct:.2f}%  "
                f"finish {outcome.finish_time:.1f}s"
            )
            checks.append((service, app, pliant))

    with capsys.disabled():
        print()
        print("=== Fig. 4: dynamic behavior (timelines) ===")
        for line in lines:
            print(line)

    # Shape assertions mirroring the paper's narrative:
    by_key = {(s, a): r for s, a, r in checks}
    # memcached forces canneal to yield multiple cores...
    assert by_key[("memcached", "canneal")].max_cores_reclaimed() >= 2
    # ...while SNP's decontending variants need far less.
    assert (
        by_key[("memcached", "snp")].max_cores_reclaimed()
        <= by_key[("memcached", "canneal")].max_cores_reclaimed()
    )
    # Every colocation ends with QoS restored.
    assert all(r.qos_met for r in by_key.values())
