"""Fig. 10: when does approximation alone suffice?

Classifies every colocation (1-, 2- and 3-app mixes per service) by the
deepest sustained escalation Pliant needed: approximation only, or 1 / 2 /
3 / 4+ reclaimed cores.  Paper: NGINX resolves ~33% of cases with
approximation alone, memcached almost always needs at least one core, and
MongoDB gets by with approximation alone or one core in the majority of
cases.
"""

from repro.cluster import breakdown_outcomes, combination_mixes
from repro.viz import format_table

from benchmarks._common import (
    ALL_APP_NAMES,
    SERVICES,
    bench_spec,
    run_pair,
    run_spec,
)

import pytest

pytestmark = pytest.mark.benchmark


def _results_for(service):
    results = [run_pair(service, app)[1] for app in ALL_APP_NAMES]
    mixes = [
        mix
        for arity, sample in ((2, 14), (3, 10))
        for mix in combination_mixes(ALL_APP_NAMES, arity, sample=sample, seed=17)
    ]
    batch = run_spec(
        bench_spec(
            f"fig10-{service}-mixes",
            base={"service": service},
            axes={"apps": mixes},
        )
    )
    return results + batch.results


def test_fig10_breakdown(benchmark, capsys):
    breakdowns = benchmark.pedantic(
        lambda: {s: breakdown_outcomes(_results_for(s)) for s in SERVICES},
        rounds=1,
        iterations=1,
    )

    with capsys.disabled():
        print()
        print("=== Fig. 10: escalation-depth breakdown (fraction of runs) ===")
        rows = []
        for service, breakdown in breakdowns.items():
            fractions = breakdown.fractions()
            rows.append(
                [service]
                + [round(fractions[k], 2) for k in ("approx_only", "1_core", "2_cores", "3_cores", "4+_cores")]
                + [breakdown.total]
            )
        print(
            format_table(
                ["service", "approx only", "1 core", "2 cores", "3 cores", "4+", "runs"],
                rows,
            )
        )

    nginx = breakdowns["nginx"].fractions()
    memcached = breakdowns["memcached"].fractions()
    mongodb = breakdowns["mongodb"].fractions()

    # memcached is the strictest: approximation alone almost never suffices.
    assert memcached["approx_only"] < nginx["approx_only"] + 0.05
    assert memcached["approx_only"] <= 0.15
    # NGINX resolves a meaningful fraction with approximation alone.
    assert nginx["approx_only"] >= 0.10
    # MongoDB: approximation alone or one core covers the majority.
    assert mongodb["approx_only"] + mongodb["1_core"] >= 0.5
    # Reclaiming 4+ cores is rare everywhere (paper: "rare in practice").
    for service in SERVICES:
        assert breakdowns[service].fractions()["4+_cores"] <= 0.1
