"""Fig. 5 + Section 6.2 headline scalars: Pliant vs the Precise baseline
across all 24 approximate applications and all three interactive services.

Prints, per service, the paper's bar/marker/label data: precise and Pliant
tail latency (vs QoS), the app's relative execution time, its output
inaccuracy, and the DynamoRIO-analog overhead (the whisker).
"""

import numpy as np

from repro.cluster import summarize_pair
from repro.viz import format_table

from benchmarks._common import (
    ALL_APP_NAMES,
    SERVICES,
    SERVICE_UNITS,
    app_overhead,
    bench_spec,
    run_spec,
)

import pytest

pytestmark = pytest.mark.benchmark


def test_fig5_aggregate(benchmark, capsys):
    # One spec covers the whole matrix (3 services x 24 apps x 2
    # policies), so the engine fans the 144 scenarios out in one batch
    # instead of pair by pair.
    spec = bench_spec(
        "fig5-aggregate",
        axes={
            "service": SERVICES,
            "apps": ALL_APP_NAMES,
            "policy": ("precise", "pliant"),
        },
    )

    def full_matrix():
        results = run_spec(spec)
        return [
            summarize_pair(
                results.lookup(service=service, apps=(app,), policy="precise"),
                results.lookup(service=service, apps=(app,), policy="pliant"),
                app,
                app_overhead(app),
            )
            for service in SERVICES
            for app in ALL_APP_NAMES
        ]

    summaries = benchmark.pedantic(full_matrix, rounds=1, iterations=1)

    with capsys.disabled():
        for service in SERVICES:
            scale, unit = SERVICE_UNITS[service]
            rows = [
                [
                    s.app,
                    round(s.precise_p99 * scale, 1),
                    round(s.pliant_p99 * scale, 1),
                    round(s.qos * scale, 1),
                    round(s.precise_ratio, 2),
                    round(s.pliant_ratio, 2),
                    "yes" if s.pliant_meets_qos else "NO",
                    round(s.relative_exec_time, 2),
                    round(s.inaccuracy_pct, 1),
                    round(100 * s.dynrio_overhead, 1),
                ]
                for s in summaries
                if s.service == service
            ]
            print()
            print(f"=== Fig. 5: {service} (latency in {unit}) ===")
            print(
                format_table(
                    [
                        "app",
                        f"precise p99",
                        f"pliant p99",
                        "QoS",
                        "precise/QoS",
                        "pliant/QoS",
                        "met",
                        "rel exec",
                        "inacc %",
                        "dynrio %",
                    ],
                    rows,
                )
            )

        inaccs = [s.inaccuracy_pct for s in summaries]
        overheads = [s.dynrio_overhead for s in summaries]
        print()
        print("=== Section 6.2 headline scalars (paper -> measured) ===")
        print(f"mean inaccuracy:      2.1%  -> {np.mean(inaccs):.2f}%")
        print(f"worst inaccuracy:     5.4%  -> {np.max(inaccs):.2f}%")
        print(f"mean dynrio overhead: 3.8%  -> {100 * np.mean(overheads):.2f}%")
        print(f"max dynrio overhead:  8.9%  -> {100 * np.max(overheads):.2f}%")
        for service, lo, hi in (
            ("nginx", 2.1, 9.8),
            ("memcached", 1.46, 3.8),
            ("mongodb", 2.08, 5.91),
        ):
            ratios = [s.precise_ratio for s in summaries if s.service == service]
            print(
                f"{service} precise violations: {lo}-{hi}x -> "
                f"{min(ratios):.2f}-{max(ratios):.2f}x"
            )

    # The paper's headline claims, as assertions.
    assert all(s.precise_ratio > 1.0 for s in summaries)
    assert all(s.pliant_meets_qos for s in summaries)
    assert np.mean(inaccs) < 3.5
    assert np.max(inaccs) < 6.5
    # All apps keep near-nominal performance except water_spatial.
    for s in summaries:
        if np.isnan(s.relative_exec_time):
            continue
        limit = 1.40 if s.app == "water_spatial" else 1.15
        assert s.relative_exec_time < limit, (s.service, s.app, s.relative_exec_time)
