"""Fig. 6: Pliant managing two approximate applications at once
(canneal + bayesian with each interactive service).

Prints per-app level/core timelines and checks the round-robin fairness
claim: neither application sacrifices disproportionately.
"""

from repro.viz import format_timeline

from benchmarks._common import SERVICES, bench_spec, ladder, run_spec

import pytest

pytestmark = pytest.mark.benchmark

MIX = ("canneal", "bayesian")


def test_fig6_multiapp_dynamic(benchmark, capsys):
    spec = bench_spec(
        "fig6-multiapp", base={"apps": MIX}, axes={"service": SERVICES}
    )

    def sweep():
        results = run_spec(spec)
        return {service: results.lookup(service=service) for service in SERVICES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("=== Fig. 6: multi-app colocation (canneal + bayesian) ===")
        for service, result in results.items():
            print(f"\n--- {service} ---")
            print(
                format_timeline(
                    result.epoch_p99 / result.qos, label="p99/QoS      ", ceiling=3.0
                )
            )
            for app in MIX:
                lad = ladder(app)
                print(
                    format_timeline(
                        result.epoch_app_levels[app],
                        label=f"{app:8s} lvl",
                        ceiling=max(lad.max_level, 1),
                    )
                )
                reclaimed = (
                    result.epoch_app_cores[app][0] - result.epoch_app_cores[app]
                )
                print(
                    format_timeline(reclaimed, label=f"{app:8s} rcl", ceiling=4.0)
                )
            for app in MIX:
                outcome = result.app_outcome(app)
                print(
                    f"{app}: inaccuracy {outcome.inaccuracy_pct:.2f}%  "
                    f"max reclaimed {outcome.max_reclaimed}  "
                    f"finish {outcome.finish_time:.1f}s"
                )
            print(
                f"QoS met: {result.qos_met}  "
                f"({result.qos_met_fraction() * 100:.0f}% of intervals)"
            )

    for service, result in results.items():
        assert result.qos_met, service
        reclaimed = [a.max_reclaimed for a in result.apps]
        # Round-robin: no app yields >2 more cores than its peer.
        assert max(reclaimed) - min(reclaimed) <= 2, (service, reclaimed)
        # With two apps to dial, per-app reclamation is shallower than the
        # worst single-app case (paper: each yields at most one core for
        # NGINX where alone multiple were needed).
        assert max(reclaimed) <= 3
        for app in MIX:
            assert result.app_outcome(app).inaccuracy_pct <= 6.0
