"""Fig. 1: approximation design-space exploration.

Odd rows of the paper's figure: per app, the (inaccuracy, execution time)
scatter of every examined variant, with the pareto-selected set marked.
Even rows: the tail-latency impact (vs QoS) of colocating each *selected*
variant — statically pinned — with each of the three services.

The benchmark measures a full single-app design-space exploration (cache
bypassed) — the cost Section 4.1 says is paid once per application.
"""

import pytest

from repro.apps import ALL_APP_NAMES, make_app
from repro.search import DesignSpaceExplorer
from repro.viz import format_table

from benchmarks._common import SERVICES, ladder, run_point

pytestmark = pytest.mark.benchmark


def _static_ratio(service: str, app: str, level: int) -> float:
    result = run_point(
        service=service,
        apps=(app,),
        policy="static-level",
        policy_kwargs=(("levels", ((app, level),)),),
    )
    return result.qos_ratio


def test_fig1_design_space(benchmark, capsys):
    # Benchmark: one cold exploration of a mid-sized app.
    def explore_once():
        app = make_app("kmeans")
        return DesignSpaceExplorer(app, seed=0).explore(force=True)

    benchmark.pedantic(explore_once, rounds=1, iterations=1)

    scatter_rows = []
    impact_rows = []
    selected_counts = {}
    for name in ALL_APP_NAMES:
        app = make_app(name)
        result = DesignSpaceExplorer(app, seed=0).explore()
        selected_counts[name] = len(result.selected)
        scatter_rows.append(
            [
                name,
                len(result.all_variants),
                len(result.selected),
                " ".join(
                    f"({v.inaccuracy_pct:.1f}%,{v.time_factor:.2f}x)"
                    for v in result.selected
                ),
            ]
        )
        lad = result.ladder
        for level in range(lad.max_level + 1):
            ratios = [
                _static_ratio(service, name, level) for service in SERVICES
            ]
            tag = "precise" if level == 0 else f"v{level}"
            impact_rows.append(
                [name, tag, lad.variant(level).inaccuracy_pct]
                + [round(r, 2) for r in ratios]
            )

    with capsys.disabled():
        print()
        print("=== Fig. 1 (odd rows): variants near the pareto frontier ===")
        print(
            format_table(
                ["app", "examined", "selected", "selected (inaccuracy, time)"],
                scatter_rows,
            )
        )
        print()
        print("=== Fig. 1 (even rows): tail latency vs QoS per pinned variant ===")
        print(
            format_table(
                ["app", "variant", "inacc %", "nginx", "memcached", "mongodb"],
                impact_rows,
            )
        )

    # Shape assertions: every app offers 1-8 selected variants; precise
    # execution violates QoS for every service; the most approximate
    # variant never does worse than precise on MongoDB (the amenable one).
    assert all(1 <= count <= 8 for count in selected_counts.values())
    precise_rows = [r for r in impact_rows if r[1] == "precise"]
    assert all(row[3] > 1.0 and row[4] > 1.0 and row[5] > 1.0 for row in precise_rows)
