"""Table 1: platform specification.

Prints the simulated platform parameters next to the paper's server and
benchmarks the interference model's hot query (the per-epoch pressure
computation the whole runtime is built on).
"""

from repro import units
from repro.config import PlatformSpec
from repro.server import InterferenceModel, ResourceProfile
from repro.server.platform import default_platform
from repro.viz import format_table

import pytest

pytestmark = pytest.mark.benchmark


def test_table1_platform(benchmark, capsys):
    spec = PlatformSpec()
    rows = [
        ["Model", spec.model],
        ["Sockets", spec.sockets],
        ["Cores/Socket", spec.cores_per_socket],
        ["Threads/Core", spec.threads_per_core],
        ["Base/Max Turbo Frequency", f"{spec.base_frequency_ghz}GHz / {spec.max_turbo_frequency_ghz}GHz"],
        ["L1 Inst/Data Cache", f"{spec.l1i_kb} / {spec.l1d_kb} KB"],
        ["L2 Cache", f"{spec.l2_kb}KB"],
        ["L3 (Last-Level) Cache", f"{spec.llc_bytes / units.MB:.0f} MB, {spec.llc_ways} ways"],
        ["Memory", f"16GBx{spec.memory_channels}, {spec.memory_speed_mhz}MHz DDR4"],
        ["Disk", spec.disk_desc],
        ["Network Bandwidth", f"{spec.network_bandwidth_bytes / units.GBPS:.0f}Gbps"],
        ["IRQ-reserved cores/socket", spec.irq_cores],
        ["Allocatable cores/socket", spec.usable_cores_per_socket],
    ]

    model = InterferenceModel(default_platform())
    victim = ResourceProfile(llc_footprint_bytes=units.mb(24), llc_intensity=0.9)
    aggressors = [
        (ResourceProfile(llc_footprint_bytes=units.mb(50), llc_intensity=0.8), 8)
    ]

    benchmark(model.pressure_on, victim, 8, aggressors)

    with capsys.disabled():
        print()
        print("=== Table 1: Platform Specification ===")
        print(format_table(["Parameter", "Value"], rows))

    assert spec.total_physical_cores == 44
